//! Property-based tests for the core: MGU correctness against brute force,
//! and whole-simulator functional fuzzing — random GEMM workloads must
//! compute reference-exact results under every scheduler configuration.

use proptest::prelude::*;
use save_core::{mgu, Core, CoreConfig, SchedulerKind};
use save_isa::{VecF32, LANES};
use save_kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision, RegionRole};
use save_mem::{CoreMemory, MemConfig, Uncore, WarmLevel};

fn sparse_lanes() -> impl Strategy<Value = [f32; LANES]> {
    prop::array::uniform16(prop_oneof![
        3 => Just(0.0f32),
        5 => -2.0f32..2.0,
    ])
}

proptest! {
    /// The FP32 ELM equals a per-lane brute-force recomputation.
    #[test]
    fn elm_f32_matches_bruteforce(a in sparse_lanes(), b in sparse_lanes(), wm in any::<u16>()) {
        let va = VecF32::from_lanes(a);
        let vb = VecF32::from_lanes(b);
        let elm = mgu::elm_f32(&va, &vb, wm);
        for i in 0..LANES {
            let expect = a[i] != 0.0 && b[i] != 0.0 && (wm >> i & 1 == 1);
            prop_assert_eq!(elm >> i & 1 == 1, expect, "lane {}", i);
        }
    }

    /// The mixed-precision masks: an ML is effectual iff both BF16 halves
    /// are non-zero; an AL is effectual iff either of its MLs is.
    #[test]
    fn elm_mp_matches_bruteforce(a in sparse_lanes(), b in sparse_lanes()) {
        let va = VecF32::from_lanes(a);
        let vb = VecF32::from_lanes(b);
        let (ml, al) = mgu::elm_mp(&va, &vb);
        let ab = va.as_bf16();
        let bb = vb.as_bf16();
        for j in 0..32 {
            let expect = !ab.lane(j).is_zero() && !bb.lane(j).is_zero();
            prop_assert_eq!(ml >> j & 1 == 1, expect, "ML {}", j);
        }
        for i in 0..LANES {
            prop_assert_eq!(al >> i & 1 == 1, ml >> (2 * i) & 0b11 != 0, "AL {}", i);
        }
    }
}

#[derive(Clone, Debug)]
struct FuzzCase {
    m: usize,
    n: usize,
    k: usize,
    tiles: usize,
    a_sparsity: f64,
    b_sparsity: f64,
    pattern: BroadcastPattern,
    precision: Precision,
    scheduler: usize,
    vpus: usize,
    seed: u64,
}

fn fuzz_case() -> impl Strategy<Value = FuzzCase> {
    (
        1usize..8,
        1usize..4,
        1usize..20,
        1usize..3,
        0.0f64..0.95,
        0.0f64..0.95,
        any::<bool>(),
        any::<bool>(),
        0usize..6,
        1usize..3,
        any::<u64>(),
    )
        .prop_map(|(m, n, k, tiles, a_s, b_s, emb, mp, scheduler, vpus, seed)| FuzzCase {
            m,
            n,
            k: k * 2, // even for MP
            tiles,
            a_sparsity: a_s,
            b_sparsity: b_s,
            pattern: if emb { BroadcastPattern::Embedded } else { BroadcastPattern::Explicit },
            precision: if mp { Precision::Mixed } else { Precision::F32 },
            scheduler,
            vpus,
            seed,
        })
        .prop_filter("register budget", |c| {
            GemmKernelSpec {
                m_tiles: c.m,
                n_vecs: c.n,
                pattern: c.pattern,
                precision: c.precision,
            }
            .fits_register_file()
        })
}

fn config_of(case: &FuzzCase) -> CoreConfig {
    let base = CoreConfig { num_vpus: case.vpus, ..CoreConfig::default() };
    match case.scheduler {
        0 => CoreConfig { scheduler: SchedulerKind::Baseline, rotate: false, lane_wise: false, mp_compress: false, ..base },
        1 => CoreConfig { rotate: false, lane_wise: false, mp_compress: false, ..base },
        2 => CoreConfig { rotate: true, lane_wise: false, mp_compress: false, ..base },
        3 => CoreConfig { rotate: false, lane_wise: true, mp_compress: true, ..base },
        4 => CoreConfig { scheduler: SchedulerKind::Horizontal, rotate: false, ..base },
        _ => base, // full SAVE
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// Whole-simulator functional fuzz: any workload on any scheduler
    /// configuration completes and computes the reference result exactly.
    #[test]
    fn simulator_is_functionally_correct(case in fuzz_case()) {
        let w = GemmWorkload::dense(
            "fuzz",
            GemmKernelSpec {
                m_tiles: case.m,
                n_vecs: case.n,
                pattern: case.pattern,
                precision: case.precision,
            },
            case.k,
            case.tiles,
        )
        .with_sparsity(case.a_sparsity, case.b_sparsity);
        let cfg = config_of(&case);
        let mut built = w.build(case.seed);
        let mcfg = MemConfig::default();
        let mut uncore = Uncore::new(&mcfg, 1);
        let mut cmem = CoreMemory::new(0, mcfg, cfg.freq_ghz);
        for r in &built.regions {
            if r.role == RegionRole::BroadcastInput {
                cmem.warm(&mut uncore, r.base, r.bytes, WarmLevel::L3);
            }
        }
        let out = Core::new(cfg).run(&built.program, &mut built.mem, &mut cmem, &mut uncore);
        prop_assert!(out.completed, "did not complete: {case:?}");
        if let Err((i, got, want)) = built.verify() {
            prop_assert!(false, "mismatch at {i}: got {got} want {want}, case {case:?}");
        }
        // Lane accounting: every effectual lane is issued exactly once
        // (unless the run was all baseline, which doesn't track ELMs).
        if case.scheduler != 0 {
            prop_assert!(out.stats.lanes_issued <= out.stats.lanes_total);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Rotation is a pure scheduling transform: FP32 results are bit-exact
    /// with and without it, and with lane-wise dependence.
    #[test]
    fn rotation_and_lwd_do_not_change_results(
        seed in any::<u64>(),
        a_s in 0.0f64..0.9,
        b_s in 0.0f64..0.9,
    ) {
        let w = GemmWorkload::dense(
            "rot",
            GemmKernelSpec {
                m_tiles: 7,
                n_vecs: 3,
                pattern: BroadcastPattern::Explicit,
                precision: Precision::F32,
            },
            24,
            2,
        )
        .with_sparsity(a_s, b_s);
        let mut outputs: Vec<Vec<u32>> = Vec::new();
        for (rotate, lwd) in [(false, false), (true, false), (false, true), (true, true)] {
            let cfg = CoreConfig { rotate, lane_wise: lwd, ..CoreConfig::default() };
            let mut built = w.build(seed);
            let mcfg = MemConfig::default();
            let mut uncore = Uncore::new(&mcfg, 1);
            let mut cmem = CoreMemory::new(0, mcfg, cfg.freq_ghz);
            let out = Core::new(cfg).run(&built.program, &mut built.mem, &mut cmem, &mut uncore);
            prop_assert!(out.completed);
            let bits: Vec<u32> = (0..built.expected.len())
                .map(|i| built.mem.read_f32(built.c_base + 4 * i as u64).to_bits())
                .collect();
            outputs.push(bits);
        }
        for o in &outputs[1..] {
            prop_assert_eq!(o, &outputs[0]);
        }
    }
}
