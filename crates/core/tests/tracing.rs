//! Pipeline-tracing integration: the event stream must be consistent with
//! the statistics the run reports.

use save_core::{CountingTracer, Core, CoreConfig, TextTracer, TraceEvent, Tracer};
use save_kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};
use save_mem::{CoreMemory, MemConfig, Uncore, WarmLevel};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn workload(a: f64, b: f64) -> GemmWorkload {
    GemmWorkload::dense(
        "trace",
        GemmKernelSpec {
            m_tiles: 4,
            n_vecs: 2,
            pattern: BroadcastPattern::Explicit,
            precision: Precision::F32,
        },
        16,
        1,
    )
    .with_sparsity(a, b)
}

struct SharedCounter {
    allocs: Arc<AtomicU64>,
    commits: Arc<AtomicU64>,
    vpu: Arc<AtomicU64>,
    skips: Arc<AtomicU64>,
    lanes: Arc<AtomicU64>,
}

impl Tracer for SharedCounter {
    fn event(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::Alloc { .. } => self.allocs.fetch_add(1, Ordering::Relaxed),
            TraceEvent::Commit { .. } => self.commits.fetch_add(1, Ordering::Relaxed),
            TraceEvent::VpuIssue { lanes, .. } => {
                self.lanes.fetch_add(*lanes as u64, Ordering::Relaxed);
                self.vpu.fetch_add(1, Ordering::Relaxed)
            }
            TraceEvent::BsSkip { .. } => self.skips.fetch_add(1, Ordering::Relaxed),
        };
    }
}

#[test]
fn trace_events_match_statistics() {
    let w = workload(0.5, 0.4);
    let mut built = w.build(3);
    let mcfg = MemConfig::default();
    let mut uncore = Uncore::new(&mcfg, 1);
    let mut cmem = CoreMemory::new(0, mcfg, 1.7);
    cmem.warm(&mut uncore, 0, built.mem.size() as u64, WarmLevel::L3);
    let allocs = Arc::new(AtomicU64::new(0));
    let commits = Arc::new(AtomicU64::new(0));
    let vpu = Arc::new(AtomicU64::new(0));
    let skips = Arc::new(AtomicU64::new(0));
    let lanes = Arc::new(AtomicU64::new(0));
    let mut core = Core::new(CoreConfig::save_2vpu());
    core.set_tracer(Box::new(SharedCounter {
        allocs: Arc::clone(&allocs),
        commits: Arc::clone(&commits),
        vpu: Arc::clone(&vpu),
        skips: Arc::clone(&skips),
        lanes: Arc::clone(&lanes),
    }));
    let out = core.run(&built.program, &mut built.mem, &mut cmem, &mut uncore);
    assert!(out.completed);
    built.verify().unwrap();
    let s = out.stats;
    assert_eq!(allocs.load(Ordering::Relaxed), s.uops_committed, "alloc events = µops");
    assert_eq!(commits.load(Ordering::Relaxed), s.uops_committed, "commit events = µops");
    assert_eq!(vpu.load(Ordering::Relaxed), s.vpu_ops, "VPU-issue events = compacted ops");
    assert_eq!(skips.load(Ordering::Relaxed), s.fmas_skipped_bs, "BS-skip events");
    assert_eq!(lanes.load(Ordering::Relaxed), s.lanes_issued, "traced lanes = issued lanes");
}

/// Regression: attaching a tracer must disable event-driven fast-forward —
/// the jump replays statistics deltas but cannot replay trace events, so a
/// traced run that skipped cycles would emit a truncated stream. A traced
/// run must produce the identical event stream (and identical cycle count)
/// whether the `fast_forward` config flag is on or off.
#[test]
fn traced_run_emits_same_events_with_fast_forward_on_and_off() {
    let w = workload(0.6, 0.5);
    let mut totals = Vec::new();
    for ff in [true, false] {
        let mut built = w.build(11);
        let mcfg = MemConfig::default();
        let mut uncore = Uncore::new(&mcfg, 1);
        let mut cmem = CoreMemory::new(0, mcfg, 1.7);
        cmem.warm(&mut uncore, 0, built.mem.size() as u64, WarmLevel::L3);
        let allocs = Arc::new(AtomicU64::new(0));
        let commits = Arc::new(AtomicU64::new(0));
        let vpu = Arc::new(AtomicU64::new(0));
        let skips = Arc::new(AtomicU64::new(0));
        let lanes = Arc::new(AtomicU64::new(0));
        let mut core = Core::new(CoreConfig { fast_forward: ff, ..CoreConfig::save_2vpu() });
        core.set_tracer(Box::new(SharedCounter {
            allocs: Arc::clone(&allocs),
            commits: Arc::clone(&commits),
            vpu: Arc::clone(&vpu),
            skips: Arc::clone(&skips),
            lanes: Arc::clone(&lanes),
        }));
        let out = core.run(&built.program, &mut built.mem, &mut cmem, &mut uncore);
        assert!(out.completed);
        totals.push((
            allocs.load(Ordering::Relaxed),
            commits.load(Ordering::Relaxed),
            vpu.load(Ordering::Relaxed),
            skips.load(Ordering::Relaxed),
            lanes.load(Ordering::Relaxed),
            out.stats.cycles,
        ));
    }
    assert_eq!(
        totals[0], totals[1],
        "traced event counts and cycles must not depend on the fast-forward flag"
    );
}

#[test]
fn text_trace_is_nonempty_and_ordered() {
    let w = workload(0.0, 0.3);
    let mut built = w.build(5);
    let mcfg = MemConfig::default();
    let mut uncore = Uncore::new(&mcfg, 1);
    let mut cmem = CoreMemory::new(0, mcfg, 1.7);
    cmem.warm(&mut uncore, 0, built.mem.size() as u64, WarmLevel::L3);
    let buf: Vec<u8> = Vec::new();
    let mut core = Core::new(CoreConfig::save_2vpu());
    // Capture through a shared buffer.
    let shared = std::sync::Arc::new(std::sync::Mutex::new(buf));
    struct W(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
    impl std::io::Write for W {
        fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    core.set_tracer(Box::new(TextTracer::new(W(Arc::clone(&shared)))));
    let out = core.run(&built.program, &mut built.mem, &mut cmem, &mut uncore);
    assert!(out.completed);
    let text = String::from_utf8(shared.lock().unwrap().clone()).unwrap();
    assert!(text.contains("alloc"));
    assert!(text.contains("vpu"));
    assert!(text.contains("commit"));
    // Cycle numbers are non-decreasing line to line per event category.
    let cycles: Vec<u64> = text
        .lines()
        .filter(|l| l.contains("commit"))
        .filter_map(|l| l.split(']').next()?.trim_start_matches('[').trim().parse().ok())
        .collect();
    assert!(cycles.windows(2).all(|w| w[0] <= w[1]), "commit trace must be time-ordered");
}

#[test]
fn counting_tracer_via_public_api() {
    // CountingTracer can't be read back through the boxed API (ownership
    // moves in), so just exercise it standalone against a tiny stream.
    let mut t = CountingTracer::default();
    t.event(&TraceEvent::VpuIssue { cycle: 1, lanes: 16, from: vec![1] });
    t.event(&TraceEvent::BsSkip { cycle: 2, rob: 4 });
    assert_eq!(t.vpu_issues, 1);
    assert_eq!(t.bs_skips, 1);
}
