//! Precise architectural state: the paper's SAVE design goes to some
//! length to keep coalescing compatible with precise exceptions (§III) and
//! to write back correct intermediate destinations under ML compression
//! (§V-B). These tests stop the out-of-order core at arbitrary µop-commit
//! boundaries and compare the retired register state against an in-order
//! reference interpreter — the state a precise exception would expose.

use proptest::prelude::*;
use save_core::{Core, CoreConfig, SchedulerKind};
use save_isa::{Inst, Memory, Program, VOperand, VecF32, LANES, NUM_VREGS};
use save_kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};
use save_mem::{CoreMemory, MemConfig, Uncore, WarmLevel};

/// In-order reference: executes the first `n_uops` cracked µops of
/// `program` and returns the architectural vector registers.
fn reference_exec(program: &Program, mem: &Memory, n_uops: u64) -> [VecF32; NUM_VREGS] {
    let mut mem = mem.clone();
    let mut v = [VecF32::ZERO; NUM_VREGS];
    let mut k = [u16::MAX; 8];
    #[allow(unused_assignments, unused_mut)]
    let mut temp = VecF32::ZERO;
    let mut done = 0u64;
    let budget = |done: &mut u64| {
        *done += 1;
        *done <= n_uops
    };
    for inst in program.iter() {
        match *inst {
            Inst::Zero { dst } => {
                if !budget(&mut done) {
                    break;
                }
                v[dst.index()] = VecF32::ZERO;
            }
            Inst::SetMask { dst, value } => {
                if !budget(&mut done) {
                    break;
                }
                k[dst.index()] = value;
            }
            Inst::ScalarOp => {
                if !budget(&mut done) {
                    break;
                }
            }
            Inst::FrontEndBubble { .. } => {} // no architectural effect, no µop
            Inst::BroadcastLoad { dst, addr } => {
                if !budget(&mut done) {
                    break;
                }
                v[dst.index()] = mem.read_bcast_f32(addr);
            }
            Inst::VecLoad { dst, addr } | Inst::CompressedVecLoad { dst, addr, .. } => {
                if !budget(&mut done) {
                    break;
                }
                v[dst.index()] = mem.read_vec_f32(addr);
            }
            Inst::VecStore { src, addr } => {
                if !budget(&mut done) {
                    break;
                }
                mem.write_vec_f32(addr, v[src.index()]);
            }
            Inst::VfmaF32 { acc, a, b, mask } => {
                // Memory operands crack into a load µop first.
                let (av, bv) = match (a, b) {
                    (VOperand::Reg(ra), VOperand::Reg(rb)) => (v[ra.index()], v[rb.index()]),
                    (VOperand::Reg(ra), VOperand::MemBcast(addr)) => {
                        if !budget(&mut done) {
                            break;
                        }
                        temp = mem.read_bcast_f32(addr);
                        (v[ra.index()], temp)
                    }
                    (VOperand::Reg(ra), VOperand::MemVec(addr)) => {
                        if !budget(&mut done) {
                            break;
                        }
                        temp = mem.read_vec_f32(addr);
                        (v[ra.index()], temp)
                    }
                    (VOperand::MemBcast(addr), VOperand::Reg(rb)) => {
                        if !budget(&mut done) {
                            break;
                        }
                        temp = mem.read_bcast_f32(addr);
                        (v[rb.index()], temp)
                    }
                    (VOperand::MemVec(addr), VOperand::Reg(rb)) => {
                        if !budget(&mut done) {
                            break;
                        }
                        temp = mem.read_vec_f32(addr);
                        (v[rb.index()], temp)
                    }
                    _ => panic!("two memory operands"),
                };
                if !budget(&mut done) {
                    break;
                }
                let wm = mask.map(|m| k[m.index()]).unwrap_or(u16::MAX);
                let mut out = v[acc.index()];
                for l in 0..LANES {
                    if wm >> l & 1 == 1 {
                        out.set_lane(l, av.lane(l).mul_add(bv.lane(l), out.lane(l)));
                    }
                }
                v[acc.index()] = out;
            }
            Inst::VdpBf16 { acc, a, b } => {
                let (av, bv) = match (a, b) {
                    (VOperand::Reg(ra), VOperand::Reg(rb)) => (v[ra.index()], v[rb.index()]),
                    (VOperand::Reg(ra), VOperand::MemBcast(addr)) => {
                        if !budget(&mut done) {
                            break;
                        }
                        temp = mem.read_bcast_f32(addr);
                        (v[ra.index()], temp)
                    }
                    (VOperand::MemBcast(addr), VOperand::Reg(rb)) => {
                        if !budget(&mut done) {
                            break;
                        }
                        temp = mem.read_bcast_f32(addr);
                        (v[rb.index()], temp)
                    }
                    _ => panic!("unsupported MP operand combination"),
                };
                if !budget(&mut done) {
                    break;
                }
                let ab = av.as_bf16();
                let bb = bv.as_bf16();
                let mut out = v[acc.index()];
                for l in 0..LANES {
                    let mut c = out.lane(l);
                    c = ab.lane(2 * l).to_f32().mul_add(bb.lane(2 * l).to_f32(), c);
                    c = ab.lane(2 * l + 1).to_f32().mul_add(bb.lane(2 * l + 1).to_f32(), c);
                    out.set_lane(l, c);
                }
                v[acc.index()] = out;
            }
        }
        if done >= n_uops {
            break;
        }
    }
    v
}

fn check_precise(w: &GemmWorkload, cfg: CoreConfig, seed: u64, n_uops: u64) {
    let mut built = w.build(seed);
    let reference = reference_exec(&built.program, &built.mem, n_uops);
    let mcfg = MemConfig::default();
    let mut uncore = Uncore::new(&mcfg, 1);
    let mut cmem = CoreMemory::new(0, mcfg, cfg.freq_ghz);
    cmem.warm(&mut uncore, 0, 0, WarmLevel::L3);
    let (arch, stats) =
        Core::new(cfg).run_until_uops(n_uops, &built.program, &mut built.mem, &mut cmem, &mut uncore);
    assert!(stats.uops_committed >= n_uops.min(stats.uops_committed));
    for (r, (got, want)) in arch.iter().zip(reference.iter()).enumerate() {
        for l in 0..LANES {
            assert_eq!(
                got.lane(l),
                want.lane(l),
                "zmm{r} lane {l} at commit boundary {n_uops} ({})",
                w.name
            );
        }
    }
}

fn workload(pattern: BroadcastPattern, precision: Precision) -> GemmWorkload {
    GemmWorkload::dense(
        "precise",
        GemmKernelSpec { m_tiles: 4, n_vecs: 2, pattern, precision },
        12,
        1,
    )
    .with_sparsity(0.4, 0.5)
}

#[test]
fn precise_state_at_selected_boundaries() {
    for pattern in [BroadcastPattern::Explicit, BroadcastPattern::Embedded] {
        for precision in [Precision::F32, Precision::Mixed] {
            let w = workload(pattern, precision);
            for n in [0u64, 1, 5, 17, 40, 99, 10_000] {
                check_precise(&w, CoreConfig::save_2vpu(), 21, n);
            }
        }
    }
}

#[test]
fn precise_state_under_every_scheduler() {
    let w = workload(BroadcastPattern::Explicit, Precision::F32);
    for cfg in [
        CoreConfig::baseline(),
        CoreConfig::save_2vpu(),
        CoreConfig::save_1vpu(),
        CoreConfig { scheduler: SchedulerKind::Horizontal, ..CoreConfig::save_2vpu() },
        CoreConfig { mp_compress: false, ..CoreConfig::save_2vpu() },
    ] {
        for n in [3u64, 23, 61] {
            check_precise(&w, cfg, 33, n);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Fuzz: at any commit boundary, the retired register state equals the
    /// in-order reference — the precise-exception guarantee.
    #[test]
    fn precise_state_fuzz(
        n in 0u64..400,
        seed in any::<u64>(),
        mp in any::<bool>(),
        emb in any::<bool>(),
    ) {
        let w = workload(
            if emb { BroadcastPattern::Embedded } else { BroadcastPattern::Explicit },
            if mp { Precision::Mixed } else { Precision::F32 },
        );
        check_precise(&w, CoreConfig::save_2vpu(), seed, n);
    }
}
