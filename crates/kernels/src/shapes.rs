//! Layer tables for the paper's workloads: VGG16, ResNet-50 and GNMT (§VI).
//!
//! ResNet-50's 53 convolutions are listed as 24 unique shapes with
//! occurrence counts; names follow the paper's `ResNet<stage>_<block>`
//! convention (`a`/`b` for the 1x1 bottleneck convs, bare for the 3x3,
//! `ds` for the downsample projection), so the individually studied kernels
//! — ResNet2_2, ResNet3_2, ResNet4_1a, ResNet5_1a — resolve here.

use crate::conv::ConvShape;
use crate::lstm::LstmShape;

/// The 13 VGG16 convolution layers (ImageNet 224x224).
pub fn vgg16() -> Vec<ConvShape> {
    vec![
        ConvShape::new("VGG1_1", 3, 64, 224, 3, 1, 1),
        ConvShape::new("VGG1_2", 64, 64, 224, 3, 1, 1),
        ConvShape::new("VGG2_1", 64, 128, 112, 3, 1, 1),
        ConvShape::new("VGG2_2", 128, 128, 112, 3, 1, 1),
        ConvShape::new("VGG3_1", 128, 256, 56, 3, 1, 1),
        ConvShape::new("VGG3_2", 256, 256, 56, 3, 1, 1),
        ConvShape::new("VGG3_3", 256, 256, 56, 3, 1, 1),
        ConvShape::new("VGG4_1", 256, 512, 28, 3, 1, 1),
        ConvShape::new("VGG4_2", 512, 512, 28, 3, 1, 1),
        ConvShape::new("VGG4_3", 512, 512, 28, 3, 1, 1),
        ConvShape::new("VGG5_1", 512, 512, 14, 3, 1, 1),
        ConvShape::new("VGG5_2", 512, 512, 14, 3, 1, 1),
        ConvShape::new("VGG5_3", 512, 512, 14, 3, 1, 1),
    ]
}

/// The 53 ResNet-50 convolutions as 24 unique shapes with counts.
pub fn resnet50() -> Vec<ConvShape> {
    vec![
        ConvShape::new("ResNet1", 3, 64, 224, 7, 2, 1),
        // Stage 2 (56x56, 3 blocks).
        ConvShape::new("ResNet2_1a", 64, 64, 56, 1, 1, 1),
        ConvShape::new("ResNet2_2a", 256, 64, 56, 1, 1, 2),
        ConvShape::new("ResNet2_2", 64, 64, 56, 3, 1, 3),
        ConvShape::new("ResNet2_1b", 64, 256, 56, 1, 1, 3),
        ConvShape::new("ResNet2_ds", 64, 256, 56, 1, 1, 1),
        // Stage 3 (28x28, 4 blocks).
        ConvShape::new("ResNet3_1a", 256, 128, 56, 1, 1, 1),
        ConvShape::new("ResNet3_1", 128, 128, 56, 3, 2, 1),
        ConvShape::new("ResNet3_2a", 512, 128, 28, 1, 1, 3),
        ConvShape::new("ResNet3_2", 128, 128, 28, 3, 1, 3),
        ConvShape::new("ResNet3_1b", 128, 512, 28, 1, 1, 4),
        ConvShape::new("ResNet3_ds", 256, 512, 56, 1, 2, 1),
        // Stage 4 (14x14, 6 blocks).
        ConvShape::new("ResNet4_1a", 512, 256, 28, 1, 1, 1),
        ConvShape::new("ResNet4_1", 256, 256, 28, 3, 2, 1),
        ConvShape::new("ResNet4_2a", 1024, 256, 14, 1, 1, 5),
        ConvShape::new("ResNet4_2", 256, 256, 14, 3, 1, 5),
        ConvShape::new("ResNet4_1b", 256, 1024, 14, 1, 1, 6),
        ConvShape::new("ResNet4_ds", 512, 1024, 28, 1, 2, 1),
        // Stage 5 (7x7, 3 blocks).
        ConvShape::new("ResNet5_1a", 1024, 512, 14, 1, 1, 1),
        ConvShape::new("ResNet5_1", 512, 512, 14, 3, 2, 1),
        ConvShape::new("ResNet5_2a", 2048, 512, 7, 1, 1, 2),
        ConvShape::new("ResNet5_2", 512, 512, 7, 3, 1, 2),
        ConvShape::new("ResNet5_1b", 512, 2048, 7, 1, 1, 3),
        ConvShape::new("ResNet5_ds", 1024, 2048, 14, 1, 2, 1),
    ]
}

/// GNMT's LSTM cells (8-layer encoder with a bidirectional first layer,
/// 8-layer decoder, hidden size 1024, WMT'16 EN-DE). Counts fold in an
/// average unrolled sequence length of 50 steps.
pub fn gnmt(batch: usize) -> Vec<LstmShape> {
    vec![
        LstmShape::new("GNMT enc-bi", 1024, 1024, batch, 2 * 50),
        LstmShape::new("GNMT enc", 1024, 1024, batch, 7 * 50),
        LstmShape::new("GNMT dec", 2048, 1024, batch, 8 * 50),
    ]
}

/// Looks up a convolution shape by name across both CNN tables.
pub fn conv_by_name(name: &str) -> Option<ConvShape> {
    vgg16().into_iter().chain(resnet50()).find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_has_13_layers() {
        assert_eq!(vgg16().len(), 13);
        assert!(vgg16().iter().all(|s| s.rs == 3 && s.stride == 1));
    }

    #[test]
    fn resnet50_totals_53_convs() {
        let total: usize = resnet50().iter().map(|s| s.count).sum();
        assert_eq!(total, 53);
        assert_eq!(resnet50().len(), 24);
    }

    #[test]
    fn named_kernels_resolve() {
        for n in ["ResNet2_2", "ResNet3_2", "ResNet4_1a", "ResNet5_1a"] {
            assert!(conv_by_name(n).is_some(), "{n} missing");
        }
        assert!(conv_by_name("ResNet9_9").is_none());
    }

    #[test]
    fn resnet_channel_chaining_is_consistent() {
        // Each stage's 1x1b output must feed the next stage's 1x1a input.
        assert_eq!(conv_by_name("ResNet2_1b").unwrap().c_out, conv_by_name("ResNet3_1a").unwrap().c_in);
        assert_eq!(conv_by_name("ResNet3_1b").unwrap().c_out, conv_by_name("ResNet4_1a").unwrap().c_in);
        assert_eq!(conv_by_name("ResNet4_1b").unwrap().c_out, conv_by_name("ResNet5_1a").unwrap().c_in);
    }

    #[test]
    fn gnmt_cells() {
        let cells = gnmt(64);
        assert_eq!(cells.len(), 3);
        assert!(cells.iter().all(|c| c.hidden == 1024 && c.batch == 64));
    }
}
