//! LSTM cells lowered to GEMM workloads.
//!
//! An LSTM cell computes the four gates as one GEMM: `[4H x (I+H)]` weights
//! times the concatenated `[input; hidden]` activations (§II-A). DNNL
//! broadcasts the activations and streams the weight vectors, so activation
//! sparsity (dropout, 20% in GNMT) is broadcasted sparsity and pruned
//! weights are non-broadcasted sparsity (Table III).
//!
//! Unlike convolutions, the weight matrix is touched once per time step —
//! `reuse_b` is false and the kernel streams `B` from memory, giving LSTMs
//! a lower compute-to-memory ratio. This is why the paper's LSTM speedups
//! cap earlier than the CNNs' (§VII-A: with 2 VPUs the speedup caps once
//! weights are ~20% pruned; with 1 VPU it keeps growing until ~60%).

use crate::gemm::{GemmKernelSpec, GemmWorkload};
use crate::types::{BroadcastPattern, Phase, Precision};
use serde::{Deserialize, Serialize};

/// An LSTM cell shape.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LstmShape {
    /// Cell name (e.g. `"GNMT enc0"`).
    pub name: String,
    /// Input feature size.
    pub input: usize,
    /// Hidden state size.
    pub hidden: usize,
    /// Batch rows processed per step.
    pub batch: usize,
    /// Occurrences (layers x unrolled steps represented by this shape).
    pub count: usize,
}

impl LstmShape {
    /// Creates a shape.
    pub fn new(
        name: impl Into<String>,
        input: usize,
        hidden: usize,
        batch: usize,
        count: usize,
    ) -> Self {
        LstmShape { name: name.into(), input, hidden, batch, count }
    }

    /// Multiply-accumulate FLOPs of the cell GEMM (2 per MAC) times count.
    pub fn flops(&self) -> f64 {
        2.0 * (4 * self.hidden * (self.input + self.hidden) * self.batch) as f64
            * self.count as f64
    }

    /// Builds the (scaled-down) GEMM workload for `phase`.
    ///
    /// Forward and backward LSTM phases are merged in DNNL (Table III);
    /// [`Phase::BackwardInput`] and [`Phase::BackwardWeights`] both map to
    /// the same backward cell GEMM shape here.
    pub fn workload(&self, _phase: Phase, precision: Precision) -> GemmWorkload {
        // 4 vector columns over the 4H gate outputs, 6 batch rows.
        let spec = GemmKernelSpec {
            m_tiles: 6,
            n_vecs: 4,
            pattern: BroadcastPattern::Explicit,
            precision,
        };
        let k_total = (self.input + self.hidden).min(128) & !1;
        GemmWorkload {
            name: format!("{} {}", self.name, precision),
            spec,
            k_total,
            tiles: 24,
            // Each weight panel is reused by ~12 batch-row tiles, then the
            // next panel streams from memory: arithmetic intensity matches a
            // batched LSTM cell, so the kernel is barely compute-bound when
            // dense and hits the bandwidth roof once SAVE skips work.
            b_panel_tiles: 12,
            a_sparsity: 0.0,
            b_sparsity: 0.0,
            use_write_masks: false,
            software_bs_skip: false,
            compressed_b: false,
            a_cluster: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_streams_weights() {
        let s = LstmShape::new("GNMT enc0", 1024, 1024, 128, 8);
        let w = s.workload(Phase::Forward, Precision::F32);
        assert!(!w.reuse_b(), "LSTM weights must stream to be memory-bound");
        assert_eq!(w.b_panels(), 2);
        assert!(w.spec.fits_register_file());
    }

    #[test]
    fn flops_formula() {
        let s = LstmShape::new("x", 1024, 1024, 64, 1);
        assert_eq!(s.flops(), 2.0 * (4 * 1024 * 2048 * 64) as f64);
    }
}
