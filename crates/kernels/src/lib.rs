//! # save-kernels — DNN kernel generators and layer tables
//!
//! The paper runs Intel DNNL's AVX-512 GEMM/convolution/LSTM kernels inside
//! the simulator. We cannot execute x86 binaries, so this crate generates
//! µop streams with the same structure DNNL emits (see DESIGN.md,
//! substitutions): register-blocked GEMM micro-kernels that keep a tile of
//! `m_tiles x n_vecs` accumulators in vector registers, stream the
//! non-broadcasted multiplicand through `n_vecs` registers, and feed the
//! broadcasted multiplicand either through explicit `vbroadcastss` loads
//! (*explicit broadcast pattern*) or as VFMA memory operands (*embedded
//! broadcast pattern*) — §II-B of the paper.
//!
//! The crate also carries the paper's workloads: the 13 VGG16 convolutions,
//! the 53 ResNet-50 convolutions and the GNMT LSTM cells (§VI), plus the
//! four individually named kernels of §VII (ResNet2_2, ResNet3_2,
//! ResNet4_1a, ResNet5_1a) with the register blockings the paper describes
//! (28 accumulators with reuse 28 → effective combination window ≈ 1;
//! 21 accumulators with reuse 7 → effective CW ≈ 3, §VII-D).
//!
//! Kernel builds are *functional*: they allocate and fill matrices with
//! controlled sparsity and return the expected output so callers can verify
//! the simulator's numerical result exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conv;
pub mod gemm;
pub mod lstm;
pub mod shapes;
pub mod types;

pub use conv::ConvShape;
pub use gemm::{BuiltKernel, GemmKernelSpec, GemmWorkload};
pub use lstm::LstmShape;
pub use types::{BroadcastPattern, Phase, Precision, Region, RegionRole};
