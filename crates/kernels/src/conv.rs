//! Convolution layers lowered to GEMM micro-kernel workloads.
//!
//! DNNL computes convolutions directly as a series of small GEMMs (§II-A).
//! Per phase the operand roles follow DNNL's direct convolution (DESIGN.md,
//! Table III reconstruction):
//!
//! * **forward** — broadcast input activations × weight vectors over 16
//!   output channels; reduction over `c_in * r * s`;
//! * **backward input (dgrad)** — broadcast output gradients × transposed
//!   weight vectors; reduction over `c_out * r * s`;
//! * **backward weights (wgrad)** — broadcast activations × gradient
//!   vectors; reduction over the output pixels.
//!
//! Forward kernels use the explicit broadcast pattern; both backward phases
//! use the embedded pattern (matching the kernels the paper studies in
//! Figs 17-18). Weights are reused across output-pixel tiles (`reuse_b`),
//! which keeps convolutions compute-bound.

use crate::gemm::{GemmKernelSpec, GemmWorkload};
use crate::types::{BroadcastPattern, Phase, Precision};
use serde::{Deserialize, Serialize};

/// A convolution layer shape.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvShape {
    /// Layer name (e.g. `"ResNet3_2"`).
    pub name: String,
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Input spatial height/width (square).
    pub hw: usize,
    /// Kernel height/width (square).
    pub rs: usize,
    /// Stride.
    pub stride: usize,
    /// How many times this shape occurs in the network.
    pub count: usize,
}

impl ConvShape {
    /// Creates a shape.
    pub fn new(
        name: impl Into<String>,
        c_in: usize,
        c_out: usize,
        hw: usize,
        rs: usize,
        stride: usize,
        count: usize,
    ) -> Self {
        ConvShape { name: name.into(), c_in, c_out, hw, rs, stride, count }
    }

    /// Output spatial size.
    pub fn out_hw(&self) -> usize {
        self.hw.div_ceil(self.stride)
    }

    /// Multiply-accumulate FLOPs of the full layer (2 per MAC) for one
    /// sample, times the occurrence count.
    pub fn flops(&self) -> f64 {
        let out = self.out_hw();
        2.0 * (out * out * self.c_out * self.c_in * self.rs * self.rs) as f64 * self.count as f64
    }

    /// Reduction length of the GEMM for `phase`.
    pub fn reduction(&self, phase: Phase) -> usize {
        match phase {
            Phase::Forward => self.c_in * self.rs * self.rs,
            Phase::BackwardInput => self.c_out * self.rs * self.rs,
            Phase::BackwardWeights => self.out_hw() * self.out_hw(),
        }
    }

    /// Vectorized (16-wide) dimension of the GEMM for `phase`.
    fn vec_dim(&self, phase: Phase) -> usize {
        match phase {
            Phase::Forward => self.c_out,
            Phase::BackwardInput => self.c_in,
            Phase::BackwardWeights => self.c_out,
        }
    }

    /// Register blocking for `phase`, DNNL-style: up to 4 vector columns,
    /// rows chosen to use 21-28 accumulators.
    pub fn blocking(&self, phase: Phase) -> (usize, usize) {
        // The paper's named backward-input kernels use specific blockings
        // (§VII-D): ResNet3_2 has 28 accumulators with a reuse of 28
        // (effective CW ≈ 1); ResNet5_1a has 21 with a reuse of 7
        // (effective CW ≈ 3).
        if phase == Phase::BackwardInput {
            match self.name.as_str() {
                "ResNet3_2" => return (28, 1),
                "ResNet5_1a" => return (7, 3),
                _ => {}
            }
        }
        let n = (self.vec_dim(phase) / 16).clamp(1, 4);
        let m = match n {
            1 => 28,
            2 => 12,
            3 => 7,
            _ => 6,
        };
        (m, n)
    }

    /// The broadcast pattern DNNL-style kernels use for `phase`.
    pub fn pattern(&self, phase: Phase) -> BroadcastPattern {
        match phase {
            Phase::Forward => BroadcastPattern::Explicit,
            Phase::BackwardInput | Phase::BackwardWeights => BroadcastPattern::Embedded,
        }
    }

    /// Builds the (scaled-down) GEMM workload for `phase` at `precision`.
    ///
    /// The reduction length is capped and the tile count fixed so a kernel
    /// simulates in milliseconds; end-to-end estimates rescale by
    /// [`ConvShape::flops`] (DESIGN.md §4).
    pub fn workload(&self, phase: Phase, precision: Precision) -> GemmWorkload {
        let (m, n) = self.blocking(phase);
        let k_cap = match precision {
            Precision::F32 => 128,
            Precision::Mixed => 128,
        };
        let k_total = self.reduction(phase).min(k_cap).max(16) & !1;
        GemmWorkload {
            name: format!("{} {} {}", self.name, phase, precision),
            spec: GemmKernelSpec { m_tiles: m, n_vecs: n, pattern: self.pattern(phase), precision },
            k_total,
            tiles: 6,
            b_panel_tiles: usize::MAX,
            a_sparsity: 0.0,
            b_sparsity: 0.0,
            use_write_masks: false,
            software_bs_skip: false,
            compressed_b: false,
            a_cluster: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ConvShape {
        ConvShape::new("ResNet3_2", 128, 128, 28, 3, 1, 4)
    }

    #[test]
    fn reductions_per_phase() {
        let s = shape();
        assert_eq!(s.reduction(Phase::Forward), 128 * 9);
        assert_eq!(s.reduction(Phase::BackwardInput), 128 * 9);
        assert_eq!(s.reduction(Phase::BackwardWeights), 28 * 28);
    }

    #[test]
    fn named_blocking_overrides() {
        let s = shape();
        assert_eq!(s.blocking(Phase::BackwardInput), (28, 1));
        let s5 = ConvShape::new("ResNet5_1a", 1024, 512, 7, 1, 1, 1);
        assert_eq!(s5.blocking(Phase::BackwardInput), (7, 3));
    }

    #[test]
    fn workloads_fit_register_file() {
        for phase in Phase::ALL {
            for prec in [Precision::F32, Precision::Mixed] {
                let w = shape().workload(phase, prec);
                assert!(w.spec.fits_register_file(), "{phase} {prec}");
                assert!(w.k_total.is_multiple_of(2));
            }
        }
    }

    #[test]
    fn forward_is_explicit_backward_embedded() {
        let s = shape();
        assert_eq!(s.pattern(Phase::Forward), BroadcastPattern::Explicit);
        assert_eq!(s.pattern(Phase::BackwardInput), BroadcastPattern::Embedded);
        assert_eq!(s.pattern(Phase::BackwardWeights), BroadcastPattern::Embedded);
    }

    #[test]
    fn flops_scale_with_count() {
        let mut s = shape();
        let f1 = s.flops();
        s.count = 8;
        assert!((s.flops() / f1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn strided_output_size() {
        let s = ConvShape::new("x", 3, 64, 224, 7, 2, 1);
        assert_eq!(s.out_hw(), 112);
    }
}
