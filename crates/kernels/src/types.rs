//! Shared kernel vocabulary.

use serde::{Deserialize, Serialize};

/// Numeric precision of a kernel (§II-B).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Precision {
    /// 16-lane FP32 VFMAs.
    F32,
    /// Mixed precision: BF16 multiplicands, FP32 accumulation
    /// (`VDPBF16PS`-style).
    Mixed,
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Precision::F32 => write!(f, "FP32"),
            Precision::Mixed => write!(f, "MP"),
        }
    }
}

/// How the broadcasted multiplicand reaches the VFMA (§II-B).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum BroadcastPattern {
    /// `vbroadcastss` into a register, reused by several VFMAs — used when
    /// the broadcasted scalar has high reuse.
    Explicit,
    /// The VFMA's memory operand broadcasts directly — used when reuse is
    /// low; bound by both VFMA throughput and L1-D bandwidth (§IV-A).
    Embedded,
}

/// The phase of training (or inference) a kernel implements (Table III).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Phase {
    /// Forward propagation / inference.
    Forward,
    /// Back-propagation of input (dgrad).
    BackwardInput,
    /// Back-propagation of weights (wgrad).
    BackwardWeights,
}

impl Phase {
    /// All three phases in the order the paper reports them.
    pub const ALL: [Phase; 3] = [Phase::Forward, Phase::BackwardInput, Phase::BackwardWeights];
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Phase::Forward => write!(f, "fwd"),
            Phase::BackwardInput => write!(f, "bwd-input"),
            Phase::BackwardWeights => write!(f, "bwd-weights"),
        }
    }
}

/// What a memory region holds, so the runner can apply the paper's cache
/// warm-up policy (§VI: the broadcast-side input — previous operation's
/// output — is warm in L3; everything else is cold).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RegionRole {
    /// The broadcast-side input (activations forward, gradients backward).
    BroadcastInput,
    /// The non-broadcasted multiplicand panel (weights / gradients).
    VectorInput,
    /// The kernel's output.
    Output,
}

/// A memory region of a built kernel.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Region {
    /// Base byte address in the kernel's functional memory.
    pub base: u64,
    /// Length in bytes.
    pub bytes: u64,
    /// What it holds.
    pub role: RegionRole,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings() {
        assert_eq!(Precision::F32.to_string(), "FP32");
        assert_eq!(Precision::Mixed.to_string(), "MP");
        assert_eq!(Phase::BackwardInput.to_string(), "bwd-input");
    }

    #[test]
    fn all_phases_listed() {
        assert_eq!(Phase::ALL.len(), 3);
    }
}
