//! Register-blocked GEMM micro-kernel generator.
//!
//! The generated stream mirrors a DNNL AVX-512 micro-kernel (§II, Fig 1):
//! a tile of `m_tiles x n_vecs` accumulators lives in vector registers; per
//! reduction step the kernel loads `n_vecs` vectors of the non-broadcasted
//! multiplicand `B`, then for each of the `m_tiles` rows broadcasts one
//! scalar of `A` (explicitly into a register, or embedded in the VFMA) and
//! issues `n_vecs` VFMAs. Broadcasted sparsity (BS) comes from `A`,
//! non-broadcasted sparsity (NBS) from `B` (§III).
//!
//! A workload executes `tiles` such micro-tiles back to back; `reuse_b`
//! controls whether the `B` panel is shared across tiles (convolutions
//! reuse weights across output positions — compute-bound) or distinct per
//! tile (LSTM cells stream their large weight matrices — memory-bound,
//! which is why the paper's LSTM speedups cap early, §VII-A).

use crate::types::{BroadcastPattern, Precision, Region, RegionRole};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use save_isa::{Bf16, Inst, KReg, Memory, Program, VOperand, VReg, LANES, NUM_VREGS};
use serde::{Deserialize, Serialize};

/// Register blocking and operand pattern of a micro-kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GemmKernelSpec {
    /// Accumulator rows (broadcast scalars per reduction step). Also the
    /// reuse count of each non-broadcasted register, which divides the
    /// effective combination window (§VII-D).
    pub m_tiles: usize,
    /// Accumulator columns in 16-lane vector registers. This is the
    /// effective combination-window size under register reuse (§VII-D).
    pub n_vecs: usize,
    /// Broadcast pattern.
    pub pattern: BroadcastPattern,
    /// Numeric precision.
    pub precision: Precision,
}

impl GemmKernelSpec {
    /// Number of accumulator registers (`m_tiles * n_vecs`).
    pub fn accumulators(&self) -> usize {
        self.m_tiles * self.n_vecs
    }

    /// Checks the blocking fits the 32-register architectural file
    /// (accumulators + `n_vecs` B registers + 1 broadcast register).
    pub fn fits_register_file(&self) -> bool {
        self.accumulators() + self.n_vecs < NUM_VREGS
    }
}

/// A complete kernel workload: blocking, reduction size, tiling, data
/// sparsity.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GemmWorkload {
    /// Human-readable kernel name (e.g. `"ResNet3_2 bwd-input"`).
    pub name: String,
    /// Micro-kernel blocking.
    pub spec: GemmKernelSpec,
    /// Reduction length per tile (must be even for mixed precision).
    pub k_total: usize,
    /// Number of micro-tiles executed sequentially.
    pub tiles: usize,
    /// How many consecutive tiles share one B panel. Convolutions reuse
    /// their weights across all output tiles (`usize::MAX`); LSTM cells
    /// reuse a weight panel only across the batch rows it serves and then
    /// stream the next panel from memory.
    pub b_panel_tiles: usize,
    /// Fraction of zero elements in the broadcasted operand A (BS source).
    pub a_sparsity: f64,
    /// Fraction of zero elements in the non-broadcasted operand B
    /// (NBS source).
    pub b_sparsity: f64,
    /// Use AVX-512 write masks to express A-side sparsity instead of zero
    /// values (the pruned-weights-with-masks form of §III). FP32 +
    /// explicit-broadcast only.
    #[serde(default)]
    pub use_write_masks: bool,
    /// SparseTrain-style *software* broadcast-sparsity skipping (§VIII): the
    /// generated code checks each broadcast scalar and branches around the
    /// whole VFMA group when it is zero, paying one scalar check µop per
    /// row. Exploits BS only (never NBS), on unmodified baseline hardware.
    /// FP32 + explicit-broadcast only.
    #[serde(default)]
    pub software_bs_skip: bool,
    /// ZCOMP-style compressed storage for the B panels (§VIII): each vector
    /// is stored as a 16-bit occupancy bitmap plus its packed non-zero
    /// elements, so the panels' cache/DRAM footprint shrinks with NBS while
    /// the VFMAs consume the decompressed vectors directly. FP32 only.
    #[serde(default)]
    pub compressed_b: bool,
    /// Mean run length of zero/non-zero clusters along the reduction
    /// dimension of A (1 = i.i.d. uniform random, the paper's sweeps).
    /// Real ReLU activations cluster; software zero-skipping depends on it
    /// (branch predictability), while SAVE is insensitive to structure.
    #[serde(default = "default_cluster")]
    pub a_cluster: usize,
}

// Referenced from the `#[serde(default = "default_cluster")]` attribute only.
#[allow(dead_code)]
fn default_cluster() -> usize {
    1
}

impl GemmWorkload {
    /// Convenience constructor with dense data.
    pub fn dense(name: impl Into<String>, spec: GemmKernelSpec, k_total: usize, tiles: usize) -> Self {
        GemmWorkload {
            name: name.into(),
            spec,
            k_total,
            tiles,
            b_panel_tiles: usize::MAX,
            a_sparsity: 0.0,
            b_sparsity: 0.0,
            use_write_masks: false,
            software_bs_skip: false,
            compressed_b: false,
            a_cluster: 1,
        }
    }

    /// Number of distinct B panels the workload touches.
    pub fn b_panels(&self) -> usize {
        if self.b_panel_tiles == 0 {
            1
        } else {
            self.tiles.div_ceil(self.b_panel_tiles.min(self.tiles))
        }
    }

    /// `true` when all tiles share one B panel (weight reuse).
    pub fn reuse_b(&self) -> bool {
        self.b_panels() == 1
    }

    /// Returns a copy with the given sparsity levels.
    pub fn with_sparsity(mut self, a: f64, b: f64) -> Self {
        self.a_sparsity = a;
        self.b_sparsity = b;
        self
    }

    /// VFMA µops this workload will execute. With
    /// [`GemmWorkload::software_bs_skip`] the built program may contain
    /// fewer (zero blocks are skipped at build time); this is the analytic
    /// count without skipping.
    pub fn fma_count(&self) -> u64 {
        let k_steps = match self.spec.precision {
            Precision::F32 => self.k_total,
            Precision::Mixed => self.k_total / 2,
        };
        (self.tiles * k_steps * self.spec.m_tiles * self.spec.n_vecs) as u64
    }

    /// Multiply-accumulate FLOPs (2 per MAC) of the scaled-down workload.
    pub fn flops(&self) -> f64 {
        (self.tiles * self.k_total * self.spec.m_tiles * self.spec.n_vecs * LANES * 2) as f64
    }

    /// Builds the instruction stream, functional memory, and reference
    /// output.
    ///
    /// # Panics
    /// Panics if the blocking does not fit the register file, if `k_total`
    /// is odd for mixed precision, or if write masks are requested for an
    /// unsupported configuration.
    pub fn build(&self, seed: u64) -> BuiltKernel {
        assert!(self.spec.fits_register_file(), "blocking exceeds 32 registers: {:?}", self.spec);
        if self.spec.precision == Precision::Mixed {
            assert!(self.k_total.is_multiple_of(2), "mixed precision needs an even reduction length");
        }
        if self.use_write_masks {
            assert!(
                self.spec.precision == Precision::F32
                    && self.spec.pattern == BroadcastPattern::Explicit,
                "write masks are modelled for FP32 explicit-broadcast kernels"
            );
        }
        if self.software_bs_skip {
            assert!(
                self.spec.precision == Precision::F32
                    && self.spec.pattern == BroadcastPattern::Explicit
                    && !self.use_write_masks,
                "software BS skipping is modelled for FP32 explicit-broadcast kernels"
            );
        }
        if self.compressed_b {
            assert!(
                self.spec.precision == Precision::F32,
                "compressed B panels are modelled for FP32 kernels"
            );
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5a5e_c0de);
        match self.spec.precision {
            Precision::F32 => self.build_f32(&mut rng),
            Precision::Mixed => self.build_mixed(&mut rng),
        }
    }

    fn sparse_value(rng: &mut StdRng, sparsity: f64) -> f32 {
        if rng.gen_bool(sparsity) {
            0.0
        } else {
            let mag: f32 = rng.gen_range(0.125..1.0);
            if rng.gen_bool(0.5) {
                mag
            } else {
                -mag
            }
        }
    }

    fn build_f32(&self, rng: &mut StdRng) -> BuiltKernel {
        let (m, n, k, tiles) = (self.spec.m_tiles, self.spec.n_vecs, self.k_total, self.tiles);
        let nb = n * LANES;
        let b_panels = self.b_panels();
        let panel_of = |t: usize| t / self.b_panel_tiles.min(self.tiles).max(1);
        let mut mem = Memory::new(0);
        let a_base = mem.alloc(tiles * m * k * 4);
        let b_base = mem.alloc(b_panels * k * nb * 4);
        let c_base = mem.alloc(tiles * m * nb * 4);

        // Fill A (row-major along k; clustered zeros when requested) and B.
        let mut a = vec![0.0f32; tiles * m * k];
        let cluster = self.a_cluster.max(1);
        for row in a.chunks_mut(k) {
            if cluster == 1 {
                for v in row.iter_mut() {
                    *v = Self::sparse_value(rng, self.a_sparsity);
                }
            } else {
                // Two-state Markov chain with mean zero-run length
                // `cluster` and stationary sparsity `a_sparsity`.
                let p = self.a_sparsity.clamp(1e-6, 1.0 - 1e-6);
                let leave_zero = 1.0 / cluster as f64;
                let leave_nonzero = (leave_zero * p / (1.0 - p)).min(1.0);
                let mut zero = rng.gen_bool(p);
                for v in row.iter_mut() {
                    *v = if zero {
                        0.0
                    } else {
                        let mag: f32 = rng.gen_range(0.125..1.0);
                        if rng.gen_bool(0.5) {
                            mag
                        } else {
                            -mag
                        }
                    };
                    let leave = if zero { leave_zero } else { leave_nonzero };
                    if rng.gen_bool(leave) {
                        zero = !zero;
                    }
                }
            }
        }
        for (i, v) in a.iter().enumerate() {
            mem.write_f32(a_base + 4 * i as u64, *v);
        }
        // In the write-mask form (§III: masks identify dropped weights
        // during pruned training) the B values stay non-zero and the
        // sparsity is carried by per-(k, vector) lane masks instead.
        let mut b = vec![0.0f32; b_panels * k * nb];
        for (i, v) in b.iter_mut().enumerate() {
            *v = Self::sparse_value(rng, if self.use_write_masks { 0.0 } else { self.b_sparsity });
            mem.write_f32(b_base + 4 * i as u64, *v);
        }
        // masks[(kk, j)]: bit l set = lane kept.
        let masks: Vec<u16> = (0..k * n)
            .map(|_| {
                if !self.use_write_masks {
                    return u16::MAX;
                }
                let mut mk = 0u16;
                for l in 0..LANES {
                    if !rng.gen_bool(self.b_sparsity) {
                        mk |= 1 << l;
                    }
                }
                mk
            })
            .collect();

        let a_idx = |t: usize, i: usize, kk: usize| (t * m + i) * k + kk;
        let b_idx = |t: usize, kk: usize, col: usize| (panel_of(t) * k + kk) * nb + col;

        // ZCOMP-style compressed B layout: per 16-element vector, a 16-bit
        // occupancy bitmap plus the packed non-zero elements. Only the
        // timing side uses these addresses; values are read uncompressed.
        let mut b_timing: Vec<u64> = Vec::new();
        let mut bz_base = 0u64;
        if self.compressed_b {
            let mut cursor = 0u64;
            for pnl in 0..b_panels {
                for kk in 0..k {
                    for j in 0..n {
                        b_timing.push(cursor);
                        let nnz = (0..LANES)
                            .filter(|l| b[(pnl * k + kk) * nb + j * LANES + l] != 0.0)
                            .count() as u64;
                        cursor += 2 + 4 * nnz;
                    }
                }
            }
            bz_base = mem.alloc(cursor.max(4) as usize);
        }
        let bt_idx = |t: usize, kk: usize, j: usize| (panel_of(t) * k + kk) * n + j;

        // Reference. Masked-out lanes skip their MAC (the VFMA leaves the
        // accumulator untouched there).
        let mut expected = vec![0.0f32; tiles * m * nb];
        for t in 0..tiles {
            for i in 0..m {
                for col in 0..nb {
                    let (j, lane) = (col / LANES, col % LANES);
                    let mut c = 0.0f32;
                    for kk in 0..k {
                        if masks[kk * n + j] >> lane & 1 == 1 {
                            c = a[a_idx(t, i, kk)].mul_add(b[b_idx(t, kk, col)], c);
                        }
                    }
                    expected[(t * m + i) * nb + col] = c;
                }
            }
        }

        // Instruction stream.
        let mut p = Program::new(self.name.clone());
        let acc_reg = |i: usize, j: usize| VReg((i * n + j) as u8);
        let b_reg = |j: usize| VReg((m * n + j) as u8);
        let bcast_reg = VReg((m * n + n) as u8);
        for t in 0..tiles {
            for i in 0..m {
                for j in 0..n {
                    p.push(Inst::Zero { dst: acc_reg(i, j) });
                }
            }
            for kk in 0..k {
                p.push(Inst::ScalarOp);
                for j in 0..n {
                    let addr = b_base + 4 * b_idx(t, kk, j * LANES) as u64;
                    if self.compressed_b {
                        p.push(Inst::CompressedVecLoad {
                            dst: b_reg(j),
                            addr,
                            timing_addr: bz_base + b_timing[bt_idx(t, kk, j)],
                        });
                    } else {
                        p.push(Inst::VecLoad { dst: b_reg(j), addr });
                    }
                    if self.use_write_masks {
                        p.push(Inst::SetMask {
                            dst: KReg(1 + j as u8),
                            value: masks[kk * n + j],
                        });
                    }
                }
                for i in 0..m {
                    let a_addr = a_base + 4 * a_idx(t, i, kk) as u64;
                    if self.software_bs_skip {
                        // SparseTrain-style software skipping, at the block
                        // granularity the real implementation uses: one
                        // vectorized all-zero test per row per 16 broadcast
                        // values (a vector compare + branch), skipping the
                        // whole block's loads and VFMAs when it is entirely
                        // zero. The branch is data-dependent: a 1-bit
                        // last-outcome predictor per row mispredicts on
                        // block-outcome transitions, costing a front-end
                        // redirect. Fine-grained zeros inside a non-zero
                        // block are NOT skipped — software can only afford
                        // coarse checks, which is why it needs clustered
                        // (ReLU-like) sparsity to win.
                        const BLK: usize = 16;
                        let block_zero = |kb: usize| -> bool {
                            let lo = kb * BLK;
                            let hi = ((kb + 1) * BLK).min(k);
                            (lo..hi).all(|kz| a[a_idx(t, i, kz)] == 0.0)
                        };
                        if kk % BLK == 0 {
                            p.push(Inst::ScalarOp);
                            let zero = block_zero(kk / BLK);
                            let prev = (kk / BLK)
                                .checked_sub(1)
                                .map(&block_zero)
                                .unwrap_or(false);
                            if zero != prev {
                                p.push(Inst::FrontEndBubble { cycles: 15 });
                            }
                        }
                        if block_zero(kk / BLK) {
                            continue;
                        }
                    }
                    match self.spec.pattern {
                        BroadcastPattern::Explicit => {
                            p.push(Inst::BroadcastLoad { dst: bcast_reg, addr: a_addr });
                            for j in 0..n {
                                p.push(Inst::VfmaF32 {
                                    acc: acc_reg(i, j),
                                    a: VOperand::Reg(bcast_reg),
                                    b: VOperand::Reg(b_reg(j)),
                                    mask: if self.use_write_masks {
                                        Some(KReg(1 + j as u8))
                                    } else {
                                        None
                                    },
                                });
                            }
                        }
                        BroadcastPattern::Embedded => {
                            for j in 0..n {
                                p.push(Inst::VfmaF32 {
                                    acc: acc_reg(i, j),
                                    a: VOperand::Reg(b_reg(j)),
                                    b: VOperand::MemBcast(a_addr),
                                    mask: None,
                                });
                            }
                        }
                    }
                }
            }
            for i in 0..m {
                for j in 0..n {
                    p.push(Inst::VecStore {
                        src: acc_reg(i, j),
                        addr: c_base + 4 * ((t * m + i) * nb + j * LANES) as u64,
                    });
                }
            }
        }

        BuiltKernel {
            program: p,
            mem,
            regions: vec![
                Region {
                    base: a_base,
                    bytes: (tiles * m * k * 4) as u64,
                    role: RegionRole::BroadcastInput,
                },
                if self.compressed_b {
                    Region {
                        base: bz_base,
                        bytes: b_timing.last().copied().unwrap_or(0) + 66,
                        role: RegionRole::VectorInput,
                    }
                } else {
                    Region {
                        base: b_base,
                        bytes: (b_panels * k * nb * 4) as u64,
                        role: RegionRole::VectorInput,
                    }
                },
                Region { base: c_base, bytes: (tiles * m * nb * 4) as u64, role: RegionRole::Output },
            ],
            c_base,
            expected,
        }
    }

    fn build_mixed(&self, rng: &mut StdRng) -> BuiltKernel {
        let (m, n, k, tiles) = (self.spec.m_tiles, self.spec.n_vecs, self.k_total, self.tiles);
        let nb = n * LANES;
        let kp = k / 2; // reduction steps (BF16 pairs)
        let b_panels = self.b_panels();
        let panel_of = |t: usize| t / self.b_panel_tiles.min(self.tiles).max(1);
        let mut mem = Memory::new(0);
        let a_base = mem.alloc(tiles * m * k * 2);
        let b_base = mem.alloc(b_panels * k * nb * 2);
        let c_base = mem.alloc(tiles * m * nb * 4);

        let mut sparse_bf16 = |s: f64| -> Bf16 { Bf16::from_f32(Self::sparse_value(rng, s)) };

        // A: row-major [tile][m][k] BF16.
        let mut a = vec![Bf16::ZERO; tiles * m * k];
        for (i, v) in a.iter_mut().enumerate() {
            *v = sparse_bf16(self.a_sparsity);
            mem.write_bf16(a_base + 2 * i as u64, *v);
        }
        // B: VNNI-style pair-interleaved: [panel][kp][col][2] BF16 — one
        // 64-byte vector holds 16 columns' (k, k+1) pairs.
        let mut b = vec![Bf16::ZERO; b_panels * kp * nb * 2];
        for (i, v) in b.iter_mut().enumerate() {
            *v = sparse_bf16(self.b_sparsity);
            mem.write_bf16(b_base + 2 * i as u64, *v);
        }

        let a_idx = |t: usize, i: usize, kk: usize| (t * m + i) * k + kk;
        let b_idx = |t: usize, kpair: usize, col: usize, half: usize| {
            ((panel_of(t) * kp + kpair) * nb + col) * 2 + half
        };

        // Reference: per AL, the two MACs of each pair in order (Fig 2).
        let mut expected = vec![0.0f32; tiles * m * nb];
        for t in 0..tiles {
            for i in 0..m {
                for col in 0..nb {
                    let mut c = 0.0f32;
                    for kpair in 0..kp {
                        let a0 = a[a_idx(t, i, 2 * kpair)].to_f32();
                        let a1 = a[a_idx(t, i, 2 * kpair + 1)].to_f32();
                        let b0 = b[b_idx(t, kpair, col, 0)].to_f32();
                        let b1 = b[b_idx(t, kpair, col, 1)].to_f32();
                        c = a0.mul_add(b0, c);
                        c = a1.mul_add(b1, c);
                    }
                    expected[(t * m + i) * nb + col] = c;
                }
            }
        }

        let mut p = Program::new(self.name.clone());
        let acc_reg = |i: usize, j: usize| VReg((i * n + j) as u8);
        let b_reg = |j: usize| VReg((m * n + j) as u8);
        let bcast_reg = VReg((m * n + n) as u8);
        for t in 0..tiles {
            for i in 0..m {
                for j in 0..n {
                    p.push(Inst::Zero { dst: acc_reg(i, j) });
                }
            }
            for kpair in 0..kp {
                p.push(Inst::ScalarOp);
                for j in 0..n {
                    p.push(Inst::VecLoad {
                        dst: b_reg(j),
                        addr: b_base + 2 * b_idx(t, kpair, j * LANES, 0) as u64,
                    });
                }
                for i in 0..m {
                    let a_addr = a_base + 2 * a_idx(t, i, 2 * kpair) as u64;
                    match self.spec.pattern {
                        BroadcastPattern::Explicit => {
                            p.push(Inst::BroadcastLoad { dst: bcast_reg, addr: a_addr });
                            for j in 0..n {
                                p.push(Inst::VdpBf16 {
                                    acc: acc_reg(i, j),
                                    a: VOperand::Reg(bcast_reg),
                                    b: VOperand::Reg(b_reg(j)),
                                });
                            }
                        }
                        BroadcastPattern::Embedded => {
                            for j in 0..n {
                                p.push(Inst::VdpBf16 {
                                    acc: acc_reg(i, j),
                                    a: VOperand::Reg(b_reg(j)),
                                    b: VOperand::MemBcast(a_addr),
                                });
                            }
                        }
                    }
                }
            }
            for i in 0..m {
                for j in 0..n {
                    p.push(Inst::VecStore {
                        src: acc_reg(i, j),
                        addr: c_base + 4 * ((t * m + i) * nb + j * LANES) as u64,
                    });
                }
            }
        }

        BuiltKernel {
            program: p,
            mem,
            regions: vec![
                Region {
                    base: a_base,
                    bytes: (tiles * m * k * 2) as u64,
                    role: RegionRole::BroadcastInput,
                },
                Region {
                    base: b_base,
                    bytes: (b_panels * k * nb * 2) as u64,
                    role: RegionRole::VectorInput,
                },
                Region { base: c_base, bytes: (tiles * m * nb * 4) as u64, role: RegionRole::Output },
            ],
            c_base,
            expected,
        }
    }
}

/// A built kernel: program, functional memory, regions and reference output.
#[derive(Clone, Debug)]
pub struct BuiltKernel {
    /// The instruction stream.
    pub program: Program,
    /// The functional memory holding all matrices.
    pub mem: Memory,
    /// Memory regions with roles (for cache warm-up).
    pub regions: Vec<Region>,
    /// Base address of the output C.
    pub c_base: u64,
    /// Expected output values in storage order.
    pub expected: Vec<f32>,
}

impl BuiltKernel {
    /// Verifies the memory's C region against the reference.
    ///
    /// # Errors
    /// Returns the first mismatching index and the two values.
    pub fn verify(&self) -> Result<(), (usize, f32, f32)> {
        for (i, &e) in self.expected.iter().enumerate() {
            let got = self.mem.read_f32(self.c_base + 4 * i as u64);
            if got != e && !(got.is_nan() && e.is_nan()) {
                return Err((i, got, e));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(m: usize, n: usize, pattern: BroadcastPattern, precision: Precision) -> GemmKernelSpec {
        GemmKernelSpec { m_tiles: m, n_vecs: n, pattern, precision }
    }

    #[test]
    fn register_budget_check() {
        assert!(spec(28, 1, BroadcastPattern::Embedded, Precision::F32).fits_register_file());
        assert!(spec(7, 3, BroadcastPattern::Embedded, Precision::F32).fits_register_file());
        assert!(!spec(16, 2, BroadcastPattern::Explicit, Precision::F32).fits_register_file());
    }

    #[test]
    fn fma_count_accounts_for_precision() {
        let w = GemmWorkload::dense("x", spec(4, 2, BroadcastPattern::Explicit, Precision::F32), 32, 2);
        assert_eq!(w.fma_count(), (2 * 32 * 8) as u64);
        let w = GemmWorkload::dense("x", spec(4, 2, BroadcastPattern::Explicit, Precision::Mixed), 32, 2);
        assert_eq!(w.fma_count(), (2 * 16 * 8) as u64);
    }

    #[test]
    fn build_f32_reference_is_consistent() {
        // The reference must equal a straightforward recomputation from the
        // values stored in functional memory.
        let w = GemmWorkload::dense("t", spec(2, 2, BroadcastPattern::Explicit, Precision::F32), 8, 2)
            .with_sparsity(0.3, 0.4);
        let b = w.build(7);
        let (m, n, k) = (2, 2, 8);
        let nb = n * LANES;
        let a_base = b.regions[0].base;
        let b_base = b.regions[1].base;
        for t in 0..2 {
            for i in 0..m {
                for col in 0..nb {
                    let mut c = 0.0f32;
                    for kk in 0..k {
                        let av = b.mem.read_f32(a_base + 4 * ((t * m + i) * k + kk) as u64);
                        let bv = b.mem.read_f32(b_base + 4 * ((kk) * nb + col) as u64);
                        c = av.mul_add(bv, c);
                    }
                    assert_eq!(b.expected[(t * m + i) * nb + col], c);
                }
            }
        }
    }

    #[test]
    fn sparsity_levels_are_respected() {
        let w = GemmWorkload::dense("t", spec(4, 2, BroadcastPattern::Explicit, Precision::F32), 64, 4)
            .with_sparsity(0.6, 0.2);
        let b = w.build(3);
        let count_zeros = |r: &Region, elem: u64| {
            let n = r.bytes / elem;
            let mut z = 0;
            for i in 0..n {
                if b.mem.read_f32(r.base + elem * i) == 0.0 {
                    z += 1;
                }
            }
            z as f64 / n as f64
        };
        let az = count_zeros(&b.regions[0], 4);
        let bz = count_zeros(&b.regions[1], 4);
        assert!((az - 0.6).abs() < 0.06, "A sparsity {az}");
        assert!((bz - 0.2).abs() < 0.05, "B sparsity {bz}");
    }

    #[test]
    fn mixed_build_produces_even_pairs() {
        let w =
            GemmWorkload::dense("t", spec(2, 1, BroadcastPattern::Explicit, Precision::Mixed), 16, 1);
        let b = w.build(1);
        assert_eq!(b.expected.len(), 2 * LANES);
        assert!(b.program.fma_count() > 0);
    }

    #[test]
    #[should_panic(expected = "even reduction")]
    fn mixed_rejects_odd_k() {
        GemmWorkload::dense("t", spec(2, 1, BroadcastPattern::Explicit, Precision::Mixed), 15, 1)
            .build(0);
    }

    #[test]
    fn clustered_sparsity_realizes_level_and_runs() {
        let w = GemmWorkload {
            a_cluster: 16,
            ..GemmWorkload::dense(
                "c",
                spec(4, 2, BroadcastPattern::Explicit, Precision::F32),
                256,
                4,
            )
        }
        .with_sparsity(0.6, 0.0);
        let b = w.build(11);
        let r = &b.regions[0];
        let n = r.bytes / 4;
        let vals: Vec<bool> =
            (0..n).map(|i| b.mem.read_f32(r.base + 4 * i) == 0.0).collect();
        let sparsity = vals.iter().filter(|z| **z).count() as f64 / n as f64;
        assert!((sparsity - 0.6).abs() < 0.1, "stationary sparsity {sparsity}");
        // Mean zero-run length along each row must be far above the i.i.d.
        // expectation (~2.5 at 60%).
        let k = 256;
        let mut runs = 0usize;
        let mut zeros = 0usize;
        for row in vals.chunks(k) {
            let mut prev = false;
            for &z in row {
                if z {
                    zeros += 1;
                    if !prev {
                        runs += 1;
                    }
                }
                prev = z;
            }
        }
        let mean_run = zeros as f64 / runs.max(1) as f64;
        assert!(mean_run > 6.0, "clustering must lengthen runs: {mean_run:.1}");
    }

    #[test]
    fn software_skip_reduces_program_fmas_by_zero_blocks() {
        let base = GemmWorkload::dense(
            "s",
            spec(4, 2, BroadcastPattern::Explicit, Precision::F32),
            64,
            2,
        )
        .with_sparsity(0.5, 0.0);
        let skipping = GemmWorkload { software_bs_skip: true, a_cluster: 16, ..base.clone() };
        let plain = GemmWorkload { a_cluster: 16, ..base };
        let bp = plain.build(7);
        let bs = skipping.build(7);
        assert!(bs.program.fma_count() < bp.program.fma_count());
        // Identical data -> identical reference output.
        assert_eq!(bs.expected.len(), bp.expected.len());
        for (x, y) in bs.expected.iter().zip(bp.expected.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn compressed_b_region_shrinks_with_sparsity() {
        let mk = |nbs: f64| {
            let w = GemmWorkload {
                compressed_b: true,
                b_panel_tiles: 1,
                ..GemmWorkload::dense(
                    "z",
                    spec(4, 2, BroadcastPattern::Explicit, Precision::F32),
                    64,
                    4,
                )
            }
            .with_sparsity(0.0, nbs);
            let b = w.build(3);
            b.regions[1].bytes
        };
        let dense = mk(0.0);
        let sparse = mk(0.8);
        assert!(
            (sparse as f64) < dense as f64 * 0.45,
            "80% NBS must shrink the compressed footprint: {sparse} vs {dense}"
        );
    }

    #[test]
    fn verify_detects_mismatch() {
        let w = GemmWorkload::dense("t", spec(1, 1, BroadcastPattern::Explicit, Precision::F32), 4, 1);
        let mut b = w.build(0);
        // C memory is still zero (never executed): verification must fail
        // unless the expected output happens to be zero everywhere.
        if b.expected.iter().any(|&e| e != 0.0) {
            assert!(b.verify().is_err());
        }
        // Write the expected values: now it must pass.
        for (i, &e) in b.expected.clone().iter().enumerate() {
            b.mem.write_f32(b.c_base + 4 * i as u64, e);
        }
        assert!(b.verify().is_ok());
    }
}
