//! Property-based tests for the kernel generators: the built program, the
//! functional memory and the reference output must always be mutually
//! consistent, for arbitrary blockings, sizes and sparsity.

use proptest::prelude::*;
use save_isa::{Inst, LANES};
use save_kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};

fn workload_strategy() -> impl Strategy<Value = GemmWorkload> {
    (
        1usize..10,
        1usize..4,
        1usize..16,
        1usize..4,
        0.0f64..0.95,
        0.0f64..0.95,
        any::<bool>(),
        any::<bool>(),
        1usize..5,
    )
        .prop_map(|(m, n, k, tiles, a_s, b_s, emb, mp, reuse)| GemmWorkload {
            name: "prop".into(),
            spec: GemmKernelSpec {
                m_tiles: m,
                n_vecs: n,
                pattern: if emb { BroadcastPattern::Embedded } else { BroadcastPattern::Explicit },
                precision: if mp { Precision::Mixed } else { Precision::F32 },
            },
            k_total: 2 * k,
            tiles,
            b_panel_tiles: reuse,
            a_sparsity: a_s,
            b_sparsity: b_s,
            use_write_masks: false,
            software_bs_skip: false,
            compressed_b: false,
            a_cluster: 1,
        })
        .prop_filter("register budget", |w| w.spec.fits_register_file())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Build invariants: FMA count matches the analytic count; every
    /// register index stays within the 32 architectural registers; the
    /// reference output length matches the C region; regions are disjoint.
    #[test]
    fn build_invariants(w in workload_strategy(), seed in any::<u64>()) {
        let b = w.build(seed);
        prop_assert_eq!(b.program.fma_count() as u64, w.fma_count());
        for inst in b.program.iter() {
            if let Inst::VfmaF32 { acc, .. } | Inst::VdpBf16 { acc, .. } = inst {
                prop_assert!(acc.index() < 32);
            }
        }
        let nb = w.spec.n_vecs * LANES;
        prop_assert_eq!(b.expected.len(), w.tiles * w.spec.m_tiles * nb);
        for (i, a) in b.regions.iter().enumerate() {
            prop_assert!(a.bytes > 0);
            for bb in &b.regions[i + 1..] {
                let disjoint = a.base + a.bytes <= bb.base || bb.base + bb.bytes <= a.base;
                prop_assert!(disjoint, "regions overlap");
            }
        }
    }

    /// The reference equals an independent recomputation from the values in
    /// functional memory (F32 path).
    #[test]
    fn f32_reference_recomputes(w in workload_strategy(), seed in any::<u64>()) {
        prop_assume!(w.spec.precision == Precision::F32);
        let b = w.build(seed);
        let (m, n, k) = (w.spec.m_tiles, w.spec.n_vecs, w.k_total);
        let nb = n * LANES;
        let a_base = b.regions[0].base;
        let b_base = b.regions[1].base;
        let panel = |t: usize| t / w.b_panel_tiles.min(w.tiles).max(1);
        for t in 0..w.tiles {
            for i in 0..m {
                for col in 0..nb {
                    let mut c = 0.0f32;
                    for kk in 0..k {
                        let av = b.mem.read_f32(a_base + 4 * ((t * m + i) * k + kk) as u64);
                        let bv = b.mem.read_f32(b_base + 4 * ((panel(t) * k + kk) * nb + col) as u64);
                        c = av.mul_add(bv, c);
                    }
                    prop_assert_eq!(b.expected[(t * m + i) * nb + col].to_bits(), c.to_bits());
                }
            }
        }
    }

    /// Requested sparsity is realized statistically (large-sample cases).
    #[test]
    fn sparsity_is_realized(a_s in 0.1f64..0.9, b_s in 0.1f64..0.9, seed in any::<u64>()) {
        let w = GemmWorkload::dense(
            "s",
            GemmKernelSpec {
                m_tiles: 8,
                n_vecs: 2,
                pattern: BroadcastPattern::Explicit,
                precision: Precision::F32,
            },
            64,
            4,
        )
        .with_sparsity(a_s, b_s);
        let b = w.build(seed);
        let frac = |r: &save_kernels::Region| {
            let n = r.bytes / 4;
            let z = (0..n).filter(|i| b.mem.read_f32(r.base + 4 * i) == 0.0).count();
            z as f64 / n as f64
        };
        prop_assert!((frac(&b.regions[0]) - a_s).abs() < 0.12);
        prop_assert!((frac(&b.regions[1]) - b_s).abs() < 0.12);
    }

    /// Builds are deterministic in the seed.
    #[test]
    fn build_is_deterministic(w in workload_strategy(), seed in any::<u64>()) {
        let b1 = w.build(seed);
        let b2 = w.build(seed);
        prop_assert_eq!(b1.expected.len(), b2.expected.len());
        for (x, y) in b1.expected.iter().zip(b2.expected.iter()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        prop_assert_eq!(b1.program.len(), b2.program.len());
    }
}
