//! Property-based tests for the sparsity substrate.

use proptest::prelude::*;
use save_sparsity::{magnitude_prune, ActivationModel, NetKind, PruningSchedule};

proptest! {
    /// The pruning schedule is monotone non-decreasing and bounded by the
    /// target for any valid hyper-parameters.
    #[test]
    fn schedule_monotone_and_bounded(
        start in 0.0f64..100.0,
        span in 1.0f64..200.0,
        target in 0.0f64..1.0,
        t1 in 0.0f64..400.0,
        t2 in 0.0f64..400.0,
    ) {
        let s = PruningSchedule { start, end: start + span, target, total: start + span + 50.0 };
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(s.sparsity_at(lo) <= s.sparsity_at(hi) + 1e-12);
        prop_assert!(s.sparsity_at(hi) <= target + 1e-12);
        prop_assert!(s.sparsity_at(lo) >= 0.0);
    }

    /// Magnitude pruning hits the requested count exactly and never keeps a
    /// weight smaller in magnitude than one it dropped.
    #[test]
    fn magnitude_prune_is_exact_and_ordered(
        weights in prop::collection::vec(-10.0f32..10.0, 1..200),
        target in 0.0f64..1.0,
    ) {
        let mut w = weights.clone();
        let mask = magnitude_prune(&mut w, target);
        let dropped = mask.iter().filter(|&&m| !m).count();
        prop_assert_eq!(dropped, (weights.len() as f64 * target).round() as usize);
        let max_dropped = mask
            .iter()
            .zip(weights.iter())
            .filter(|(m, _)| !**m)
            .map(|(_, v)| v.abs())
            .fold(0.0f32, f32::max);
        let min_kept = mask
            .iter()
            .zip(weights.iter())
            .filter(|(m, _)| **m)
            .map(|(_, v)| v.abs())
            .fold(f32::INFINITY, f32::min);
        prop_assert!(max_dropped <= min_kept + 1e-6, "dropped {max_dropped} kept {min_kept}");
        // Pruned positions really are zero.
        for (i, &m) in mask.iter().enumerate() {
            if !m {
                prop_assert_eq!(w[i], 0.0);
            }
        }
    }

    /// Activation models always produce valid probabilities that are
    /// non-decreasing over training progress.
    #[test]
    fn activation_models_valid_and_monotone(
        kind_idx in 0usize..4,
        layer in 0usize..49,
        p1 in 0.0f64..1.0,
        p2 in 0.0f64..1.0,
    ) {
        let kind = [
            NetKind::Vgg16Dense,
            NetKind::ResNet50Dense,
            NetKind::ResNet50Pruned,
            NetKind::GnmtPruned,
        ][kind_idx];
        let m = ActivationModel::new(kind);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let s_lo = m.sparsity(layer, 49, lo);
        let s_hi = m.sparsity(layer, 49, hi);
        prop_assert!((0.0..=1.0).contains(&s_lo));
        prop_assert!((0.0..=1.0).contains(&s_hi));
        prop_assert!(s_lo <= s_hi + 1e-12, "sparsity must grow during training");
        let g = m.grad_sparsity(layer, 49, hi);
        prop_assert!((0.0..=1.0).contains(&g));
    }
}
