//! # save-sparsity — the sparsity substrate
//!
//! The paper drives its end-to-end estimates from *realistic* sparsity: the
//! per-layer activation-sparsity progression over training (Fig 12, profiled
//! by the authors / taken from Rhu et al. for VGG16), the magnitude-pruning
//! schedules (Fig 13, the Zhu & Gupta polynomial schedule with the §VI
//! hyper-parameters), and the end-of-training levels used for inference.
//!
//! We do not have the authors' training traces (DESIGN.md, substitutions),
//! so [`activation`] provides synthetic per-layer progressions matching the
//! published shapes: VGG16's ReLU sparsity is high (40-90%, deeper layers
//! sparser); ResNet-50's is lower because residual connections add a
//! positive bias before the ReLU and BatchNorm eliminates output-gradient
//! sparsity (§VI); GNMT's activation sparsity is the constant 20% dropout
//! rate. [`pruning`] reproduces the exact schedules stated in §VI, and
//! [`magnitude`] implements the underlying magnitude-based pruning that
//! generates the weight masks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod magnitude;
pub mod pruning;

pub use activation::{ActivationModel, NetKind};
pub use magnitude::magnitude_prune;
pub use pruning::PruningSchedule;
