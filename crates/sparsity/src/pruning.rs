//! Weight-pruning schedules (Fig 13).
//!
//! §VI: ResNet-50 is pruned with a magnitude-based method using the
//! hyper-parameters of Gale et al.: pruning starts at epoch 32, reaches the
//! 80% target at epoch 60, and training stops at epoch 102; every layer is
//! pruned at the same rate. GNMT starts at iteration 40K, reaches 90% at
//! 190K, and trains until 340K. The sparsity ramp is the Zhu & Gupta
//! polynomial schedule
//! `s(t) = s_f * (1 - (1 - (t - t0)/(t1 - t0))^3)`.

use serde::{Deserialize, Serialize};

/// A polynomial (cubic) pruning schedule.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PruningSchedule {
    /// Step (epoch or iteration) at which pruning starts.
    pub start: f64,
    /// Step at which the final sparsity is reached.
    pub end: f64,
    /// Final (target) weight sparsity.
    pub target: f64,
    /// Total training steps.
    pub total: f64,
}

impl PruningSchedule {
    /// ResNet-50's schedule (§VI): epochs 32 → 60 to 80%, 102 epochs total.
    pub fn resnet50() -> Self {
        PruningSchedule { start: 32.0, end: 60.0, target: 0.8, total: 102.0 }
    }

    /// GNMT's schedule (§VI): iterations 40K → 190K to 90%, 340K total.
    pub fn gnmt() -> Self {
        PruningSchedule { start: 40_000.0, end: 190_000.0, target: 0.9, total: 340_000.0 }
    }

    /// A dense (never-pruning) schedule.
    pub fn dense(total: f64) -> Self {
        PruningSchedule { start: total, end: total, target: 0.0, total }
    }

    /// Weight sparsity at step `t` (Zhu & Gupta polynomial ramp).
    pub fn sparsity_at(&self, t: f64) -> f64 {
        if t <= self.start || self.target == 0.0 {
            0.0
        } else if t >= self.end {
            self.target
        } else {
            let frac = (t - self.start) / (self.end - self.start);
            self.target * (1.0 - (1.0 - frac).powi(3))
        }
    }

    /// Sparsity at the end of training (used for inference, §VI).
    pub fn final_sparsity(&self) -> f64 {
        self.sparsity_at(self.total)
    }

    /// Samples the schedule at every integer step in `[0, total]` — the
    /// series plotted in Fig 13 (sub-sampled by `stride`).
    pub fn series(&self, stride: usize) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        let mut t = 0.0;
        while t <= self.total {
            out.push((t, self.sparsity_at(t)));
            t += stride as f64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_before_start_target_after_end() {
        let s = PruningSchedule::resnet50();
        assert_eq!(s.sparsity_at(0.0), 0.0);
        assert_eq!(s.sparsity_at(32.0), 0.0);
        assert!((s.sparsity_at(60.0) - 0.8).abs() < 1e-12);
        assert!((s.sparsity_at(102.0) - 0.8).abs() < 1e-12);
        assert!((s.final_sparsity() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn ramp_is_monotone_and_cubic() {
        let s = PruningSchedule::gnmt();
        let mut prev = -1.0;
        for i in 0..=34 {
            let t = i as f64 * 10_000.0;
            let v = s.sparsity_at(t);
            assert!(v >= prev, "schedule must be monotone");
            prev = v;
        }
        // The cubic front-loads pruning: halfway through the ramp it is past
        // 7/8 of the (linear-equivalent) distance.
        let mid = s.sparsity_at((40_000.0 + 190_000.0) / 2.0);
        assert!((mid - 0.9 * 0.875).abs() < 1e-9);
    }

    #[test]
    fn dense_schedule_never_prunes() {
        let s = PruningSchedule::dense(90.0);
        assert_eq!(s.sparsity_at(45.0), 0.0);
        assert_eq!(s.final_sparsity(), 0.0);
    }

    #[test]
    fn series_covers_training() {
        let s = PruningSchedule::resnet50();
        let series = s.series(1);
        assert_eq!(series.len(), 103);
        assert_eq!(series[0], (0.0, 0.0));
        assert!((series[102].1 - 0.8).abs() < 1e-12);
    }
}
