//! Per-layer activation-sparsity progressions over training (Fig 12).
//!
//! Synthetic models matching the published shapes (see crate docs and
//! DESIGN.md): each layer's *input-activation* sparsity evolves from an
//! early-training level toward a converged level with an exponential
//! saturation; deeper VGG16 layers are much sparser than shallow ones;
//! ResNet-50 is flatter and lower, with the post-residual 1x1 inputs the
//! least sparse; pruning raises late-training activation sparsity slightly;
//! GNMT sits at the constant 20% dropout rate.

use serde::{Deserialize, Serialize};

/// Which network (and training regime) the model describes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum NetKind {
    /// VGG16 with dense weights.
    Vgg16Dense,
    /// ResNet-50 with dense weights.
    ResNet50Dense,
    /// ResNet-50 pruned to 80%.
    ResNet50Pruned,
    /// GNMT pruned to 90% (activations only see 20% dropout).
    GnmtPruned,
}

impl NetKind {
    /// Human-readable name as used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            NetKind::Vgg16Dense => "dense VGG16",
            NetKind::ResNet50Dense => "dense ResNet-50",
            NetKind::ResNet50Pruned => "pruned ResNet-50",
            NetKind::GnmtPruned => "pruned GNMT",
        }
    }
}

/// The activation-sparsity model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivationModel {
    /// Network / regime.
    pub kind: NetKind,
}

impl ActivationModel {
    /// Creates the model for `kind`.
    pub fn new(kind: NetKind) -> Self {
        ActivationModel { kind }
    }

    /// Input-activation sparsity of `layer` (0-based) out of `layers`, at
    /// `progress` of the way through training (`0.0..=1.0`).
    ///
    /// Layer 0's input is the image (or embedding): always dense.
    pub fn sparsity(&self, layer: usize, layers: usize, progress: f64) -> f64 {
        if layer == 0 {
            return 0.0;
        }
        let depth = layer as f64 / (layers.max(2) - 1) as f64;
        let p = progress.clamp(0.0, 1.0);
        let ramp = 1.0 - (-4.0 * p).exp();
        match self.kind {
            NetKind::Vgg16Dense => {
                // Converged ~55%..95% by depth (Rhu et al. report 40-90%
                // with most layers at the high end), starting around 60% of
                // the converged level.
                let fin = 0.55 + 0.4 * depth;
                let start = 0.6 * fin;
                (start + (fin - start) * ramp).min(0.92)
            }
            NetKind::ResNet50Dense | NetKind::ResNet50Pruned => {
                // Residual adds + BatchNorm keep sparsity modest; inputs to
                // the post-residual 1x1a convs are the least sparse. We use
                // a periodic within-block pattern over depth.
                let block_pos = (layer % 3) as f64 / 3.0;
                let fin = 0.3 + 0.3 * depth + 0.15 * block_pos;
                let start = 0.6 * fin;
                let mut s = start + (fin - start) * ramp;
                if self.kind == NetKind::ResNet50Pruned {
                    // Pruning drives more activations to zero late in
                    // training (Fig 12, bottom panel).
                    s += 0.08 * p;
                }
                s.min(0.75)
            }
            NetKind::GnmtPruned => 0.2,
        }
    }

    /// Output-gradient sparsity of `layer` during back-propagation.
    ///
    /// ReLU back-propagation zeroes gradients wherever the activation was
    /// zero, so VGG16's gradients are as sparse as the layer's output
    /// activations; ResNet-50's BatchNorm eliminates gradient sparsity
    /// entirely (§VI / Table III); GNMT's merged backward pass sees the
    /// dropout mask.
    pub fn grad_sparsity(&self, layer: usize, layers: usize, progress: f64) -> f64 {
        match self.kind {
            NetKind::Vgg16Dense => {
                // The layer's output is the next layer's input.
                self.sparsity((layer + 1).min(layers.saturating_sub(1)), layers, progress)
            }
            NetKind::ResNet50Dense | NetKind::ResNet50Pruned => 0.0,
            NetKind::GnmtPruned => 0.2,
        }
    }

    /// The Fig 12 series for one layer: sparsity sampled at `epochs` points
    /// from the first epoch to the last.
    pub fn series(&self, layer: usize, layers: usize, epochs: usize) -> Vec<f64> {
        (0..epochs)
            .map(|e| self.sparsity(layer, layers, e as f64 / (epochs.max(2) - 1) as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_layer_input_is_dense() {
        for kind in
            [NetKind::Vgg16Dense, NetKind::ResNet50Dense, NetKind::ResNet50Pruned]
        {
            assert_eq!(ActivationModel::new(kind).sparsity(0, 13, 0.5), 0.0);
        }
    }

    #[test]
    fn vgg_deeper_layers_are_sparser() {
        let m = ActivationModel::new(NetKind::Vgg16Dense);
        let shallow = m.sparsity(2, 13, 1.0);
        let deep = m.sparsity(12, 13, 1.0);
        assert!(deep > shallow);
        assert!((0.8..=0.92).contains(&deep), "deep VGG16 layers reach ~90%: {deep}");
        assert!((0.4..=0.7).contains(&shallow), "shallow {shallow}");
    }

    #[test]
    fn sparsity_grows_during_training() {
        let m = ActivationModel::new(NetKind::Vgg16Dense);
        assert!(m.sparsity(6, 13, 0.1) < m.sparsity(6, 13, 0.9));
    }

    #[test]
    fn resnet_is_less_sparse_than_vgg() {
        let v = ActivationModel::new(NetKind::Vgg16Dense);
        let r = ActivationModel::new(NetKind::ResNet50Dense);
        let avg = |m: &ActivationModel, layers: usize| -> f64 {
            (1..layers).map(|l| m.sparsity(l, layers, 1.0)).sum::<f64>() / (layers - 1) as f64
        };
        assert!(avg(&r, 49) < avg(&v, 13));
    }

    #[test]
    fn pruned_resnet_activations_slightly_sparser_late() {
        let d = ActivationModel::new(NetKind::ResNet50Dense);
        let p = ActivationModel::new(NetKind::ResNet50Pruned);
        assert!(p.sparsity(20, 49, 1.0) > d.sparsity(20, 49, 1.0));
        assert!((p.sparsity(20, 49, 0.0) - d.sparsity(20, 49, 0.0)).abs() < 1e-9);
    }

    #[test]
    fn resnet_gradients_are_dense_vgg_gradients_are_not() {
        let v = ActivationModel::new(NetKind::Vgg16Dense);
        let r = ActivationModel::new(NetKind::ResNet50Pruned);
        assert!(v.grad_sparsity(5, 13, 1.0) > 0.4);
        assert_eq!(r.grad_sparsity(5, 49, 1.0), 0.0);
    }

    #[test]
    fn gnmt_is_constant_dropout() {
        let g = ActivationModel::new(NetKind::GnmtPruned);
        for p in [0.0, 0.5, 1.0] {
            assert_eq!(g.sparsity(3, 16, p), 0.2);
            assert_eq!(g.grad_sparsity(3, 16, p), 0.2);
        }
    }

    #[test]
    fn series_has_requested_length() {
        let m = ActivationModel::new(NetKind::ResNet50Dense);
        assert_eq!(m.series(5, 49, 102).len(), 102);
    }

    #[test]
    fn all_values_are_valid_probabilities() {
        for kind in [
            NetKind::Vgg16Dense,
            NetKind::ResNet50Dense,
            NetKind::ResNet50Pruned,
            NetKind::GnmtPruned,
        ] {
            let m = ActivationModel::new(kind);
            for l in 0..49 {
                for e in 0..=10 {
                    let s = m.sparsity(l, 49, e as f64 / 10.0);
                    assert!((0.0..=1.0).contains(&s), "{kind:?} l{l} e{e}: {s}");
                }
            }
        }
    }
}
