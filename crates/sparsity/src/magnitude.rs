//! Magnitude-based pruning (§VI: "we prune using a magnitude based method").
//!
//! Given a weight tensor and a target sparsity, the smallest-magnitude
//! weights are dropped. Training keeps pruned networks in dense form with
//! masks identifying the dropped weights (§II-D); this module produces both
//! the pruned values and the mask.

/// Prunes `weights` in place to `target` sparsity by zeroing the
/// smallest-magnitude elements, returning the keep-mask (`true` = kept).
///
/// Ties are broken by index (earlier elements are pruned first), which makes
/// the operation deterministic.
///
/// # Panics
/// Panics if `target` is not within `[0, 1]`.
pub fn magnitude_prune(weights: &mut [f32], target: f64) -> Vec<bool> {
    assert!((0.0..=1.0).contains(&target), "sparsity must be in [0,1]");
    let n = weights.len();
    let drop = (n as f64 * target).round() as usize;
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        weights[a]
            .abs()
            .partial_cmp(&weights[b].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut mask = vec![true; n];
    for &i in order.iter().take(drop) {
        weights[i] = 0.0;
        mask[i] = false;
    }
    mask
}

/// Measured sparsity of a slice (fraction of exact zeros).
pub fn measured_sparsity(weights: &[f32]) -> f64 {
    if weights.is_empty() {
        return 0.0;
    }
    weights.iter().filter(|w| **w == 0.0).count() as f64 / weights.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prunes_smallest_magnitudes() {
        let mut w = vec![0.9, -0.1, 0.5, -0.05, 0.7, 0.2];
        let mask = magnitude_prune(&mut w, 0.5);
        assert_eq!(w, vec![0.9, 0.0, 0.5, 0.0, 0.7, 0.0]);
        assert_eq!(mask, vec![true, false, true, false, true, false]);
    }

    #[test]
    fn hits_requested_sparsity() {
        let mut w: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.37).sin()).collect();
        magnitude_prune(&mut w, 0.8);
        assert!((measured_sparsity(&w) - 0.8).abs() < 0.01);
    }

    #[test]
    fn zero_target_is_identity() {
        let mut w = vec![0.3, -0.4];
        let mask = magnitude_prune(&mut w, 0.0);
        assert_eq!(w, vec![0.3, -0.4]);
        assert!(mask.iter().all(|&m| m));
    }

    #[test]
    fn full_target_zeroes_everything() {
        let mut w = vec![0.3, -0.4, 1.0];
        magnitude_prune(&mut w, 1.0);
        assert_eq!(measured_sparsity(&w), 1.0);
    }

    #[test]
    fn empty_slice_is_fine() {
        let mut w: Vec<f32> = vec![];
        assert!(magnitude_prune(&mut w, 0.5).is_empty());
        assert_eq!(measured_sparsity(&w), 0.0);
    }
}
