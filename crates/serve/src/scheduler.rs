//! Bounded work-stealing worker pool with panic isolation and respawn.
//!
//! The daemon's execution engine: admitted cells are distributed
//! round-robin over per-worker deques; an idle worker first drains its own
//! deque from the front, then steals from the *back* of a sibling's (the
//! classic stealing discipline — owners and thieves contend on opposite
//! ends). Admission control is a single atomic budget: a job whose cells
//! would push the admitted count past `capacity` is rejected with a
//! retry-after hint instead of being buffered without bound.
//!
//! Crash tolerance: a per-cell panic is already absorbed by
//! [`save_sim::durable::run_cell`]'s isolation boundary. What that cannot
//! absorb is the worker *thread* dying — emulated here by
//! [`Fault::KillWorker`], which panics **outside** `run_cell`. A monitor
//! thread notices the dead worker, reaps it, journals a `worker-lost`
//! record for the in-flight cell (failed-but-retryable history), requeues
//! the cell with the fault cleared, and respawns a replacement worker —
//! the job still completes, and `workers_respawned` counts the incident.

use crate::cache::{Claim, ResultCache};
use crate::protocol::{CellResult, Fault};
use save_sim::checkpoint::CellRecord;
use save_sim::durable::{run_cell, RetryPolicy};
use save_sim::{CellSpec, RetryClass, SimError, SupervisorHandle};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// One admitted cell: everything a worker needs to execute it and report
/// the result back to the submitting connection.
#[derive(Clone)]
pub struct Task {
    /// Daemon-assigned job id (for log attribution).
    pub job: u64,
    /// Index within the job's cell vector.
    pub index: u64,
    /// Client-chosen label, echoed in the result.
    pub label: String,
    /// The cell to simulate.
    pub spec: CellSpec,
    /// Memo-cache key ([`CellSpec::cache_key`]).
    pub key: u64,
    /// Crash-test fault, if any (cleared when the monitor requeues).
    pub fault: Option<Fault>,
    /// Whether this task already owns the cache claim for `key` — set by
    /// the monitor on requeue so the retried execution does not deadlock
    /// waiting for its own claim.
    pub holds_claim: bool,
    /// Where the result goes (the submitting connection's channel).
    pub tx: Sender<CellResult>,
}

struct WorkerSlot {
    deque: Mutex<VecDeque<Task>>,
    /// The task the worker is executing right now — what the monitor
    /// recovers when the worker dies.
    current: Mutex<Option<Task>>,
    /// Set by a worker before a *voluntary* exit (drain/shutdown) so the
    /// monitor can tell it from a crash.
    exited_clean: AtomicBool,
}

struct Ctx {
    slots: Vec<Arc<WorkerSlot>>,
    handles: Mutex<Vec<Option<JoinHandle<()>>>>,
    /// Cells admitted but not yet completed (queued + executing).
    queued: AtomicUsize,
    capacity: usize,
    rr: AtomicUsize,
    park: Mutex<()>,
    park_cv: Condvar,
    /// Stop admitting; workers exit once no work remains.
    draining: AtomicBool,
    /// Hard stop for Drop: workers exit at the next boundary.
    shutdown: AtomicBool,
    respawned: AtomicU64,
    sup: SupervisorHandle,
    policy: RetryPolicy,
    cache: Arc<ResultCache>,
}

/// Locks `m`, recovering from poison — worker panics are expected events
/// here, and every guarded structure is valid at all times (the panic
/// sites never hold these locks mid-update).
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl Ctx {
    fn pop_task(&self, me: usize) -> Option<Task> {
        if let Some(t) = lock_recover(&self.slots[me].deque).pop_front() {
            return Some(t);
        }
        let n = self.slots.len();
        for off in 1..n {
            let j = (me + off) % n;
            if let Some(t) = lock_recover(&self.slots[j].deque).pop_back() {
                return Some(t);
            }
        }
        None
    }

    fn wake_all(&self) {
        let _g = lock_recover(&self.park);
        self.park_cv.notify_all();
    }

    fn cancelled_result(task: &Task) -> CellResult {
        CellResult {
            label: task.label.clone(),
            index: task.index,
            key: task.key,
            secs_bits: f64::NAN.to_bits(),
            cycles: 0,
            attempts: 0,
            error_kind: "cancelled".into(),
            cached: false,
        }
    }

    /// Executes one task end to end and sends exactly one result. May
    /// panic (by design) on an injected [`Fault::KillWorker`] — that panic
    /// happens *before* the cache claim, so a dying worker never leaks one.
    fn execute(self: &Arc<Self>, task: &Task) {
        if let Some(Fault::KillWorker) = task.fault {
            // Escapes run_cell's per-cell isolation on purpose: this is
            // "the worker process died", not "the cell errored".
            panic!("injected fault: worker killed while holding {}", task.label);
        }
        let global = self.sup.global();
        let claim = if task.holds_claim {
            Claim::Compute
        } else {
            self.cache.claim(task.key, &global)
        };
        let result = match claim {
            Claim::Hit(rec) => CellResult {
                label: task.label.clone(),
                index: task.index,
                key: task.key,
                secs_bits: rec.secs_bits,
                cycles: rec.cycles,
                attempts: 0,
                error_kind: rec.error_kind.clone(),
                cached: true,
            },
            Claim::Cancelled => Self::cancelled_result(task),
            Claim::Compute => {
                let run = run_cell(&self.sup, &self.policy, &task.label, task.index as usize, |tok| {
                    task.spec.run(Some(tok))
                });
                match run.result {
                    Ok(kr) => {
                        let rec = CellRecord {
                            cell: task.key,
                            secs_bits: kr.seconds.to_bits(),
                            cycles: kr.cycles,
                            attempts: run.attempts,
                            error_kind: String::new(),
                        };
                        if let Err(e) = self.cache.complete(rec.clone()) {
                            eprintln!("save-serve: journal append failed: {e}");
                        }
                        CellResult {
                            label: task.label.clone(),
                            index: task.index,
                            key: task.key,
                            secs_bits: rec.secs_bits,
                            cycles: rec.cycles,
                            attempts: run.attempts,
                            error_kind: String::new(),
                            cached: false,
                        }
                    }
                    Err(e) if e.retry_class() == RetryClass::Cancelled => {
                        // Nothing to remember: release so a resubmission
                        // after restart recomputes cleanly.
                        self.cache.release(task.key);
                        Self::cancelled_result(task)
                    }
                    Err(e) => {
                        let rec = CellRecord {
                            cell: task.key,
                            secs_bits: f64::NAN.to_bits(),
                            cycles: 0,
                            attempts: run.attempts,
                            error_kind: e.kind().to_string(),
                        };
                        if let Err(je) = self.cache.complete(rec) {
                            eprintln!("save-serve: journal append failed: {je}");
                        }
                        CellResult {
                            label: task.label.clone(),
                            index: task.index,
                            key: task.key,
                            secs_bits: f64::NAN.to_bits(),
                            cycles: 0,
                            attempts: run.attempts,
                            error_kind: e.kind().to_string(),
                            cached: false,
                        }
                    }
                }
            }
        };
        // The client may have disconnected; the result is journaled either
        // way, so a resubmission is a cache hit.
        let _ = task.tx.send(result);
    }

    fn worker_loop(self: Arc<Self>, me: usize) {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match self.pop_task(me) {
                Some(t) => {
                    *lock_recover(&self.slots[me].current) = Some(t.clone());
                    self.execute(&t);
                    *lock_recover(&self.slots[me].current) = None;
                    self.queued.fetch_sub(1, Ordering::SeqCst);
                }
                None => {
                    if self.draining.load(Ordering::SeqCst) {
                        break;
                    }
                    let g = lock_recover(&self.park);
                    let _ = self
                        .park_cv
                        .wait_timeout(g, Duration::from_millis(20))
                        .unwrap_or_else(|p| p.into_inner());
                }
            }
        }
        self.slots[me].exited_clean.store(true, Ordering::SeqCst);
    }

    fn spawn_worker(self: &Arc<Self>, me: usize) -> JoinHandle<()> {
        let ctx = Arc::clone(self);
        thread::Builder::new()
            .name(format!("save-serve-worker-{me}"))
            .spawn(move || ctx.worker_loop(me))
            .expect("spawn worker thread")
    }

    /// The respawn monitor: reaps crashed workers, journals the in-flight
    /// cell as `worker-lost` (failed, retryable), requeues it with the
    /// fault cleared, and brings up a replacement.
    fn monitor_loop(self: Arc<Self>) {
        while !self.shutdown.load(Ordering::SeqCst) {
            for i in 0..self.slots.len() {
                let finished = lock_recover(&self.handles)[i]
                    .as_ref()
                    .map(|h| h.is_finished())
                    .unwrap_or(false);
                if !finished || self.slots[i].exited_clean.load(Ordering::SeqCst) {
                    continue;
                }
                // A worker died without announcing a clean exit: reap it.
                let handle = lock_recover(&self.handles)[i].take();
                if let Some(h) = handle {
                    let _ = h.join();
                }
                self.respawned.fetch_add(1, Ordering::SeqCst);
                if let Some(mut t) = lock_recover(&self.slots[i].current).take() {
                    let event = CellRecord {
                        cell: t.key,
                        secs_bits: f64::NAN.to_bits(),
                        cycles: 0,
                        attempts: 1,
                        error_kind: "worker-lost".into(),
                    };
                    if let Err(e) = self.cache.journal_event(event) {
                        eprintln!("save-serve: journal worker-lost failed: {e}");
                    }
                    eprintln!(
                        "save-serve: worker {i} died while running {}; requeued, respawning",
                        t.label
                    );
                    t.fault = None;
                    lock_recover(&self.slots[i].deque).push_front(t);
                } else {
                    eprintln!("save-serve: worker {i} died while idle; respawning");
                }
                lock_recover(&self.handles)[i] = Some(self.spawn_worker(i));
                self.wake_all();
            }
            thread::sleep(Duration::from_millis(5));
        }
    }
}

/// See module docs.
pub struct Scheduler {
    ctx: Arc<Ctx>,
    monitor: Mutex<Option<JoinHandle<()>>>,
}

impl Scheduler {
    /// Spawns `workers` worker threads plus the respawn monitor.
    /// `capacity` bounds admitted-but-incomplete cells; `policy` is the
    /// per-cell deadline/retry policy (shared with `sweep_durable`).
    pub fn new(
        workers: usize,
        capacity: usize,
        policy: RetryPolicy,
        sup: SupervisorHandle,
        cache: Arc<ResultCache>,
    ) -> Self {
        let workers = workers.max(1);
        let slots = (0..workers)
            .map(|_| {
                Arc::new(WorkerSlot {
                    deque: Mutex::new(VecDeque::new()),
                    current: Mutex::new(None),
                    exited_clean: AtomicBool::new(false),
                })
            })
            .collect();
        let ctx = Arc::new(Ctx {
            slots,
            handles: Mutex::new(Vec::new()),
            queued: AtomicUsize::new(0),
            capacity: capacity.max(1),
            rr: AtomicUsize::new(0),
            park: Mutex::new(()),
            park_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            respawned: AtomicU64::new(0),
            sup,
            policy,
            cache,
        });
        {
            let mut handles = lock_recover(&ctx.handles);
            for i in 0..workers {
                handles.push(Some(ctx.spawn_worker(i)));
            }
        }
        let mctx = Arc::clone(&ctx);
        let monitor = thread::Builder::new()
            .name("save-serve-monitor".into())
            .spawn(move || mctx.monitor_loop())
            .expect("spawn monitor thread");
        Scheduler { ctx, monitor: Mutex::new(Some(monitor)) }
    }

    /// Admits `tasks` atomically (all or nothing). On overload, returns
    /// [`SimError::Overloaded`] with a backoff hint proportional to the
    /// excess — the admission-control contract: the daemon *rejects*
    /// loudly rather than buffering without bound.
    pub fn try_submit(&self, tasks: Vec<Task>) -> Result<(), SimError> {
        if self.ctx.draining.load(Ordering::SeqCst) {
            return Err(SimError::Overloaded {
                what: "daemon is draining".into(),
                retry_after_ms: 0,
            });
        }
        let n = tasks.len();
        let mut cur = self.ctx.queued.load(Ordering::SeqCst);
        loop {
            if cur + n > self.ctx.capacity {
                let excess = (cur + n - self.ctx.capacity) as u64;
                return Err(SimError::Overloaded {
                    what: format!(
                        "queue full: {cur} admitted + {n} submitted exceeds capacity {}",
                        self.ctx.capacity
                    ),
                    retry_after_ms: (25 * excess).clamp(50, 2000),
                });
            }
            match self.ctx.queued.compare_exchange(
                cur,
                cur + n,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        let workers = self.ctx.slots.len();
        for t in tasks {
            let slot = self.ctx.rr.fetch_add(1, Ordering::SeqCst) % workers;
            lock_recover(&self.ctx.slots[slot].deque).push_back(t);
        }
        self.ctx.wake_all();
        Ok(())
    }

    /// Cells admitted but not yet completed.
    pub fn queued(&self) -> usize {
        self.ctx.queued.load(Ordering::SeqCst)
    }

    /// Workers lost to crashes and respawned.
    pub fn respawned(&self) -> u64 {
        self.ctx.respawned.load(Ordering::SeqCst)
    }

    /// Whether the scheduler is draining.
    pub fn draining(&self) -> bool {
        self.ctx.draining.load(Ordering::SeqCst)
    }

    /// Stops admission; workers finish all admitted cells, then exit.
    pub fn drain(&self) {
        self.ctx.draining.store(true, Ordering::SeqCst);
        self.ctx.wake_all();
    }

    /// Whether every admitted cell has completed.
    pub fn is_idle(&self) -> bool {
        self.queued() == 0
    }

    /// Hard stop: workers exit at their next boundary (in-flight cells
    /// still finish — cells are only abandoned via cancellation), monitor
    /// and workers are joined. Idempotent.
    pub fn shutdown(&self) {
        self.ctx.shutdown.store(true, Ordering::SeqCst);
        self.ctx.wake_all();
        if let Some(m) = lock_recover(&self.monitor).take() {
            let _ = m.join();
        }
        let handles: Vec<JoinHandle<()>> =
            lock_recover(&self.ctx.handles).iter_mut().filter_map(|h| h.take()).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use save_sim::cancel::Supervisor;
    use save_sim::runner::{ConfigKind, MachineConfig};
    use std::sync::mpsc;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("save-serve-sched-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn tiny_spec(seed: u64) -> CellSpec {
        use save_kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};
        let w = GemmWorkload::dense(
            "sched-test",
            GemmKernelSpec {
                m_tiles: 2,
                n_vecs: 2,
                pattern: BroadcastPattern::Explicit,
                precision: Precision::F32,
            },
            8,
            1,
        )
        .with_sparsity(0.5, 0.5);
        CellSpec::new(w, ConfigKind::Save2Vpu, MachineConfig::default(), seed)
    }

    fn task(i: u64, seed: u64, fault: Option<Fault>, tx: &Sender<CellResult>) -> Task {
        let spec = tiny_spec(seed);
        Task {
            job: 0,
            index: i,
            label: format!("cell-{i}"),
            key: spec.cache_key().unwrap(),
            spec,
            fault,
            holds_claim: false,
            tx: tx.clone(),
        }
    }

    #[test]
    fn executes_and_memoizes() {
        let sup = Supervisor::start(false);
        let cache = Arc::new(ResultCache::open(&tmpdir("memo")).unwrap());
        let sched =
            Scheduler::new(2, 64, RetryPolicy::default(), sup.handle(), Arc::clone(&cache));
        let (tx, rx) = mpsc::channel();
        // Two cells with the same spec: one computes, one is served.
        sched.try_submit(vec![task(0, 7, None, &tx), task(1, 7, None, &tx)]).unwrap();
        drop(tx);
        let a = rx.recv().unwrap();
        let b = rx.recv().unwrap();
        assert!(a.ok() && b.ok());
        assert_eq!(a.secs_bits, b.secs_bits, "memoized result is bit-identical");
        let cached = [a.cached, b.cached].iter().filter(|&&c| c).count();
        assert_eq!(cached, 1, "exactly one computes, the other is served from cache");
        assert_eq!(cache.records(), 1, "one journal record per unique key");
        // The result is sent before the admitted-count decrement; give the
        // worker a moment to retire the task.
        let start = std::time::Instant::now();
        while sched.queued() != 0 {
            assert!(start.elapsed() < Duration::from_secs(5), "queued count never drained");
            thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn over_capacity_submission_is_rejected_with_backoff_hint() {
        let sup = Supervisor::start(false);
        let cache = Arc::new(ResultCache::open(&tmpdir("cap")).unwrap());
        let sched = Scheduler::new(1, 2, RetryPolicy::default(), sup.handle(), cache);
        let (tx, _rx) = mpsc::channel();
        let err = sched
            .try_submit(vec![task(0, 1, None, &tx), task(1, 2, None, &tx), task(2, 3, None, &tx)])
            .unwrap_err();
        match err {
            SimError::Overloaded { what, retry_after_ms } => {
                assert!(what.contains("capacity 2"), "{what}");
                assert!(retry_after_ms >= 50);
            }
            other => panic!("expected Overloaded, got {other}"),
        }
    }

    #[test]
    fn killed_worker_is_respawned_and_cell_still_completes() {
        let sup = Supervisor::start(false);
        let cache = Arc::new(ResultCache::open(&tmpdir("kill")).unwrap());
        let sched =
            Scheduler::new(1, 64, RetryPolicy::default(), sup.handle(), Arc::clone(&cache));
        let (tx, rx) = mpsc::channel();
        sched.try_submit(vec![task(0, 11, Some(Fault::KillWorker), &tx)]).unwrap();
        drop(tx);
        let res = rx.recv_timeout(Duration::from_secs(30)).expect("cell completes after respawn");
        assert!(res.ok(), "requeued cell succeeds: {}", res.error_kind);
        assert!(!res.cached);
        assert!(sched.respawned() >= 1, "the worker death was observed");
        // The journal remembers the loss *and* the eventual success.
        assert_eq!(cache.records(), 1, "latest-record-wins leaves the success");
    }

    #[test]
    fn draining_scheduler_rejects_new_work() {
        let sup = Supervisor::start(false);
        let cache = Arc::new(ResultCache::open(&tmpdir("drain")).unwrap());
        let sched = Scheduler::new(1, 8, RetryPolicy::default(), sup.handle(), cache);
        sched.drain();
        let (tx, _rx) = mpsc::channel();
        let err = sched.try_submit(vec![task(0, 1, None, &tx)]).unwrap_err();
        assert_eq!(err.kind(), "overloaded");
        assert!(err.to_string().contains("draining"), "{err}");
    }
}
