//! Blocking client for the save-serve protocol.
//!
//! Used by the bench binaries' `--serve ADDR` mode. Submission honours the
//! daemon's admission control: a `Rejected` answer is retried after the
//! hinted backoff, a bounded number of times, before surfacing
//! [`SimError::Overloaded`] to the caller — which the bench harness treats
//! as "degrade gracefully to local execution".

use crate::protocol::{
    write_line, CellResult, LineIn, LineReader, NamedCell, Request, Response, ServeStats,
    PROTOCOL_VERSION,
};
use save_sim::SimError;
use std::net::TcpStream;
use std::time::Duration;

/// How many `Rejected` answers a submission tolerates before giving up.
pub const MAX_REJECTIONS: u32 = 5;

/// Summary of one completed job (the daemon's `Done` message).
#[derive(Clone, Copy, Debug)]
pub struct JobDone {
    /// Cells that succeeded.
    pub ok: usize,
    /// Cells that ultimately failed.
    pub failed: usize,
    /// Cells served from the daemon's memo cache.
    pub cached: usize,
    /// Whether the job was cut short by daemon-side cancellation.
    pub cancelled: bool,
}

/// One connection to a save-serve daemon.
pub struct Client {
    reader: LineReader<TcpStream>,
    writer: TcpStream,
}

fn io_err(what: impl std::fmt::Display) -> SimError {
    SimError::Io { what: what.to_string() }
}

impl Client {
    /// Connects and verifies the protocol version via `Hello`.
    pub fn connect(addr: &str) -> Result<Self, SimError> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err(format!("connect {addr}: {e}")))?;
        let writer = stream.try_clone().map_err(|e| io_err(format!("clone stream: {e}")))?;
        let mut client = Client { reader: LineReader::new(stream), writer };
        let stats = client.hello()?;
        if stats.version != PROTOCOL_VERSION {
            return Err(SimError::Protocol {
                what: format!(
                    "daemon speaks protocol v{}, this client v{PROTOCOL_VERSION}",
                    stats.version
                ),
            });
        }
        Ok(client)
    }

    fn read_response(&mut self) -> Result<Response, SimError> {
        loop {
            match self.reader.read::<Response>()? {
                LineIn::Msg(r) => return Ok(r),
                LineIn::Timeout => continue,
                LineIn::Eof => {
                    return Err(SimError::Io { what: "daemon closed the connection".into() })
                }
            }
        }
    }

    fn hello(&mut self) -> Result<ServeStats, SimError> {
        write_line(&mut self.writer, &Request::Hello)?;
        match self.read_response()? {
            Response::Hello { stats } => Ok(stats),
            other => Err(unexpected("Hello", &other)),
        }
    }

    /// Snapshot of daemon statistics.
    pub fn status(&mut self) -> Result<ServeStats, SimError> {
        write_line(&mut self.writer, &Request::Status)?;
        match self.read_response()? {
            Response::Status { stats } => Ok(stats),
            other => Err(unexpected("Status", &other)),
        }
    }

    /// Asks the daemon to drain (stop admitting, finish, exit 0).
    pub fn drain(&mut self) -> Result<(), SimError> {
        write_line(&mut self.writer, &Request::Drain)?;
        match self.read_response()? {
            Response::Draining => Ok(()),
            other => Err(unexpected("Draining", &other)),
        }
    }

    /// Submits a job and streams its results: `on_cell` is called once per
    /// cell in completion order. Admission rejections are retried with the
    /// daemon's backoff hint up to [`MAX_REJECTIONS`] times.
    pub fn submit(
        &mut self,
        name: &str,
        cells: &[NamedCell],
        mut on_cell: impl FnMut(&CellResult),
    ) -> Result<JobDone, SimError> {
        let mut rejections = 0u32;
        loop {
            write_line(
                &mut self.writer,
                &Request::Submit { name: name.to_string(), cells: cells.to_vec() },
            )?;
            match self.read_response()? {
                Response::Rejected { reason, retry_after_ms } => {
                    rejections += 1;
                    if rejections > MAX_REJECTIONS || retry_after_ms == 0 {
                        return Err(SimError::Overloaded { what: reason, retry_after_ms });
                    }
                    std::thread::sleep(Duration::from_millis(retry_after_ms.min(2000)));
                }
                Response::Accepted { .. } => break,
                Response::Error { what } => return Err(SimError::Protocol { what }),
                other => return Err(unexpected("Accepted/Rejected", &other)),
            }
        }
        loop {
            match self.read_response()? {
                Response::Cell { result } => on_cell(&result),
                Response::Done { ok, failed, cached, cancelled, .. } => {
                    return Ok(JobDone { ok, failed, cached, cancelled })
                }
                Response::Error { what } => return Err(SimError::Protocol { what }),
                other => return Err(unexpected("Cell/Done", &other)),
            }
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> SimError {
    SimError::Protocol {
        what: format!(
            "expected {wanted}, got {}",
            serde_json::to_string(got).unwrap_or_else(|_| "<unprintable>".into())
        ),
    }
}
