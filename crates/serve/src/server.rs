//! The save-serve daemon: accept loop, per-connection protocol handling,
//! and the two-stage graceful-drain state machine.
//!
//! Shutdown contract (the robustness centrepiece):
//!
//! * **first** SIGINT/SIGTERM (or a `Drain` request): stop accepting
//!   connections and admitting jobs, let every admitted cell finish and
//!   journal, flush, exit **0** — clients that were told `Accepted` get
//!   their full result stream;
//! * **second** signal: the supervisor's global cancel token latches
//!   (bridge threshold 2 — see [`save_sim::cancel::Supervisor::start_with_bridge`]),
//!   in-flight cells stop at their next cycle quantum, cancelled cells are
//!   *not* journaled (so they recompute on resubmission), and the daemon
//!   exits **130** — the same "cancelled, resumable" code the sweep
//!   binaries use.
//!
//! A SIGKILL (which cannot be handled) is covered by the journal: at most
//! one torn record, repaired on the next daemon start by
//! [`save_sim::Checkpoint`]'s tail repair; completed cells are served from
//! cache on resubmission.

use crate::cache::ResultCache;
use crate::protocol::{
    write_line, CellResult, LineIn, LineReader, Request, Response, ServeStats, PROTOCOL_VERSION,
};
use crate::scheduler::{Scheduler, Task};
use save_sim::cancel::Supervisor;
use save_sim::durable::{exit_code_for, RetryPolicy};
use save_sim::{SimError, SupervisorHandle};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Daemon configuration (see the `save-serve` binary for the flags).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:0` (port 0 = ephemeral; the chosen
    /// address is printed on stdout as `save-serve listening on ADDR`).
    pub listen: String,
    /// Memo-cache directory (manifest + journal; survives restarts).
    pub cache_dir: PathBuf,
    /// Worker-pool size.
    pub workers: usize,
    /// Admission-control capacity (max admitted-but-incomplete cells).
    pub capacity: usize,
    /// Per-cell deadline/retry policy.
    pub policy: RetryPolicy,
    /// Install process SIGINT/SIGTERM handlers (binaries: yes; in-process
    /// tests: no, to avoid hijacking the test runner's signals).
    pub install_signals: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:0".into(),
            cache_dir: PathBuf::from(".save-serve-cache"),
            workers: thread::available_parallelism().map(|n| n.get().min(4)).unwrap_or(2),
            capacity: 1024,
            policy: RetryPolicy::default(),
            install_signals: true,
        }
    }
}

struct ServeState {
    sched: Scheduler,
    cache: Arc<ResultCache>,
    sup: SupervisorHandle,
    jobs_accepted: AtomicU64,
    jobs_rejected: AtomicU64,
    next_job: AtomicU64,
    drain_requested: AtomicBool,
    capacity: usize,
    workers: usize,
}

impl ServeState {
    fn draining(&self) -> bool {
        self.drain_requested.load(Ordering::SeqCst) || save_signal::signal_count() >= 1
    }

    fn stats(&self) -> ServeStats {
        ServeStats {
            version: PROTOCOL_VERSION,
            workers: self.workers,
            capacity: self.capacity,
            queued: self.sched.queued(),
            cached_records: self.cache.records(),
            jobs_accepted: self.jobs_accepted.load(Ordering::SeqCst),
            jobs_rejected: self.jobs_rejected.load(Ordering::SeqCst),
            workers_respawned: self.sched.respawned(),
            draining: self.draining(),
        }
    }
}

/// Runs the daemon to completion. Returns the process exit code: 0 after a
/// graceful drain, 130 after a forced (second-signal) cancellation.
pub fn serve(cfg: &ServeConfig) -> Result<u8, SimError> {
    let sup = Supervisor::start_with_bridge(cfg.install_signals, 2);
    let cache = Arc::new(ResultCache::open(&cfg.cache_dir)?);
    if cache.recovered() > 0 {
        eprintln!(
            "save-serve: recovered {} journaled results from {}",
            cache.recovered(),
            cfg.cache_dir.display()
        );
    }
    let sched = Scheduler::new(
        cfg.workers,
        cfg.capacity,
        cfg.policy,
        sup.handle(),
        Arc::clone(&cache),
    );
    let listener = TcpListener::bind(&cfg.listen)
        .map_err(|e| SimError::Io { what: format!("bind {}: {e}", cfg.listen) })?;
    let local = listener
        .local_addr()
        .map_err(|e| SimError::Io { what: format!("local_addr: {e}") })?;
    // The one line tooling depends on: tests and the bench client parse the
    // chosen address from it (port 0 binds an ephemeral port).
    println!("save-serve listening on {local}");
    std::io::stdout().flush().ok();
    listener
        .set_nonblocking(true)
        .map_err(|e| SimError::Io { what: format!("set_nonblocking: {e}") })?;

    let state = Arc::new(ServeState {
        sched,
        cache,
        sup: sup.handle(),
        jobs_accepted: AtomicU64::new(0),
        jobs_rejected: AtomicU64::new(0),
        next_job: AtomicU64::new(0),
        drain_requested: AtomicBool::new(false),
        capacity: cfg.capacity,
        workers: cfg.workers,
    });

    let conns: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    while !state.draining() {
        match listener.accept() {
            Ok((stream, peer)) => {
                let st = Arc::clone(&state);
                let handle = thread::Builder::new()
                    .name(format!("save-serve-conn-{peer}"))
                    .spawn(move || {
                        if let Err(e) = handle_conn(stream, &st) {
                            // Disconnections are routine; log and move on.
                            eprintln!("save-serve: connection {peer}: {e}");
                        }
                    })
                    .expect("spawn connection thread");
                conns.lock().expect("conn list poisoned").push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(e) => {
                eprintln!("save-serve: accept: {e}");
                thread::sleep(Duration::from_millis(50));
            }
        }
    }

    // Drain: no new admissions; admitted cells finish and journal. A
    // second signal latches the global token, which makes the remaining
    // cells cancel at their next quantum — the loop below then terminates
    // quickly with the queue empty either way.
    eprintln!("save-serve: draining ({} cells in flight)", state.sched.queued());
    state.sched.drain();
    while !state.sched.is_idle() {
        thread::sleep(Duration::from_millis(10));
    }
    // Let connection threads stream their final results and notice the
    // drain via their read timeouts.
    let handles: Vec<_> = conns.lock().expect("conn list poisoned").drain(..).collect();
    for h in handles {
        let _ = h.join();
    }
    state.sched.shutdown();
    let forced = state.sup.global().is_cancelled();
    eprintln!(
        "save-serve: {} ({} results journaled)",
        if forced { "cancelled" } else { "drained" },
        state.cache.records()
    );
    Ok(exit_code_for(forced, true))
}

fn handle_conn(stream: TcpStream, state: &Arc<ServeState>) -> Result<(), SimError> {
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .map_err(|e| SimError::Io { what: format!("set_read_timeout: {e}") })?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| SimError::Io { what: format!("clone stream: {e}") })?;
    let mut reader = LineReader::new(stream);
    loop {
        match reader.read::<Request>() {
            Ok(LineIn::Timeout) => {
                if state.draining() {
                    return Ok(()); // no request in flight; close out the drain
                }
            }
            Ok(LineIn::Eof) => return Ok(()),
            Ok(LineIn::Msg(req)) => match req {
                Request::Hello => write_line(&mut writer, &Response::Hello { stats: state.stats() })?,
                Request::Status => {
                    write_line(&mut writer, &Response::Status { stats: state.stats() })?
                }
                Request::Drain => {
                    state.drain_requested.store(true, Ordering::SeqCst);
                    write_line(&mut writer, &Response::Draining)?;
                }
                Request::Submit { name, cells } => run_job(&mut writer, state, name, cells)?,
            },
            Err(e) => {
                // Answer with a protocol error if the socket still works,
                // then drop the connection.
                let _ = write_line(&mut writer, &Response::Error { what: e.to_string() });
                return Err(e);
            }
        }
    }
}

fn run_job(
    writer: &mut TcpStream,
    state: &Arc<ServeState>,
    name: String,
    cells: Vec<crate::protocol::NamedCell>,
) -> Result<(), SimError> {
    if state.draining() {
        state.jobs_rejected.fetch_add(1, Ordering::SeqCst);
        return write_line(
            writer,
            &Response::Rejected { reason: "daemon is draining".into(), retry_after_ms: 0 },
        );
    }
    let job_id = state.next_job.fetch_add(1, Ordering::SeqCst);
    let (tx, rx) = std::sync::mpsc::channel::<CellResult>();
    let mut tasks = Vec::with_capacity(cells.len());
    for (i, cell) in cells.into_iter().enumerate() {
        let key = match cell.spec.cache_key() {
            Ok(k) => k,
            Err(e) => {
                return write_line(writer, &Response::Error { what: e.to_string() });
            }
        };
        tasks.push(Task {
            job: job_id,
            index: i as u64,
            label: cell.label,
            spec: cell.spec,
            key,
            fault: cell.fault,
            holds_claim: false,
            tx: tx.clone(),
        });
    }
    drop(tx);
    let n = tasks.len();
    match state.sched.try_submit(tasks) {
        Err(SimError::Overloaded { what, retry_after_ms }) => {
            state.jobs_rejected.fetch_add(1, Ordering::SeqCst);
            write_line(writer, &Response::Rejected { reason: what, retry_after_ms })
        }
        Err(e) => write_line(writer, &Response::Error { what: e.to_string() }),
        Ok(()) => {
            state.jobs_accepted.fetch_add(1, Ordering::SeqCst);
            write_line(writer, &Response::Accepted { job: name.clone(), cells: n })?;
            let (mut ok, mut failed, mut cached, mut cancelled) = (0usize, 0usize, 0usize, false);
            for _ in 0..n {
                // Workers send exactly one result per task; a closed
                // channel means a logic bug, surfaced as a short stream.
                let Ok(result) = rx.recv() else { break };
                if result.ok() {
                    ok += 1;
                } else {
                    failed += 1;
                    if result.error_kind == "cancelled" {
                        cancelled = true;
                    }
                }
                if result.cached {
                    cached += 1;
                }
                write_line(writer, &Response::Cell { result })?;
            }
            write_line(writer, &Response::Done { job: name, ok, failed, cached, cancelled })
        }
    }
}
