//! # save-serve — crash-tolerant sweep service (DESIGN.md §5g)
//!
//! A persistent daemon that accepts sweep jobs over a JSON-lines TCP
//! protocol, executes them on a bounded work-stealing worker pool, and
//! streams per-cell results back — built entirely on threads and
//! `std::net` (no async runtime; the workspace builds offline with
//! vendored stubs only).
//!
//! Robustness features, each with a dedicated module:
//!
//! * [`protocol`] — the wire format and timeout-tolerant line framing;
//! * [`cache`] — memoized results keyed by [`save_sim::CellSpec`] content
//!   hash, journal-backed so a daemon restart recovers completed cells;
//! * [`scheduler`] — admission control (reject-with-retry-after), panic-
//!   isolated workers, and crash/respawn handling for lost workers;
//! * [`server`] — the accept loop and the two-stage graceful drain
//!   (first signal: finish and exit 0; second: cancel, exit 130);
//! * [`client`] — the blocking client the bench binaries' `--serve` mode
//!   uses, with bounded backoff against admission rejections.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod scheduler;
pub mod server;

pub use cache::{Claim, ResultCache};
pub use client::{Client, JobDone};
pub use protocol::{
    CellResult, Fault, LineIn, LineReader, NamedCell, Request, Response, ServeStats,
    PROTOCOL_VERSION,
};
pub use scheduler::{Scheduler, Task};
pub use server::{serve, ServeConfig};
