//! The save-serve daemon binary.
//!
//! ```text
//! save-serve [--listen ADDR] [--cache-dir DIR] [--workers N]
//!            [--capacity N] [--cell-deadline-ms MS] [--retries N]
//!            [--backoff-ms MS]
//! ```
//!
//! Prints `save-serve listening on ADDR` once the socket is bound (parse
//! this to discover an ephemeral port when listening on `:0`). Exit codes
//! follow the workspace convention: 0 after a graceful drain (first
//! SIGINT/SIGTERM or a client `Drain` request), 130 after a forced
//! second-signal cancellation, 2 on usage errors, 1 on startup failure.

use save_serve::{serve, ServeConfig};
use save_sim::durable::{EXIT_FAILURES, EXIT_USAGE};
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "usage: save-serve [--listen ADDR] [--cache-dir DIR] [--workers N] \
                     [--capacity N] [--cell-deadline-ms MS] [--retries N] [--backoff-ms MS]";

fn parse(args: &[String]) -> Result<ServeConfig, String> {
    let mut cfg = ServeConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{what} requires a value"))
        };
        match arg.as_str() {
            "--listen" => cfg.listen = value("--listen")?.clone(),
            "--cache-dir" => cfg.cache_dir = PathBuf::from(value("--cache-dir")?),
            "--workers" => {
                cfg.workers = value("--workers")?
                    .parse::<usize>()
                    .map_err(|e| format!("--workers: {e}"))?;
                if cfg.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--capacity" => {
                cfg.capacity = value("--capacity")?
                    .parse::<usize>()
                    .map_err(|e| format!("--capacity: {e}"))?;
                if cfg.capacity == 0 {
                    return Err("--capacity must be at least 1".into());
                }
            }
            "--cell-deadline-ms" => {
                let ms =
                    value("--cell-deadline-ms")?.parse::<u64>().map_err(|e| format!("--cell-deadline-ms: {e}"))?;
                cfg.policy.deadline = if ms == 0 { None } else { Some(Duration::from_millis(ms)) };
            }
            "--retries" => {
                cfg.policy.retries =
                    value("--retries")?.parse::<u32>().map_err(|e| format!("--retries: {e}"))?;
            }
            "--backoff-ms" => {
                let ms = value("--backoff-ms")?.parse::<u64>().map_err(|e| format!("--backoff-ms: {e}"))?;
                cfg.policy.backoff = Duration::from_millis(ms);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(cfg)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("save-serve: {msg}");
            }
            eprintln!("{USAGE}");
            std::process::exit(EXIT_USAGE as i32);
        }
    };
    match serve(&cfg) {
        Ok(code) => std::process::exit(code as i32),
        Err(e) => {
            eprintln!("save-serve: {e}");
            std::process::exit(EXIT_FAILURES as i32);
        }
    }
}
