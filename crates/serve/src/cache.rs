//! Journal-backed memoized result cache.
//!
//! Results are keyed by [`save_sim::CellSpec::cache_key`] — a content hash
//! over everything that determines a deterministic cell's outcome — and
//! persisted through the *same* append-only journal format the durable
//! sweeps use ([`save_sim::Checkpoint`], DESIGN.md §5f): one
//! [`CellRecord`] line per completed cell with the cache key in the
//! `cell` field. A daemon restart therefore recovers every completed cell
//! from disk for free, including torn-tail repair and latest-record-wins
//! deduplication.
//!
//! Concurrency contract (exercised by `tests/cache_contention.rs`): for
//! any key, **at most one thread computes at a time** and every other
//! requester either waits for that computation or is served the finished
//! record — a unique key submitted by N racing jobs is simulated exactly
//! once.
//!
//! Failure semantics follow [`SimError::retry_class_of_kind`]: journaled
//! *permanent* failures (verify-mismatch, invalid-config, …) are served
//! from cache like successes — re-running them would deterministically
//! fail again — while *transient* failure records (deadline, worker-lost,
//! …) are kept as history but do not satisfy lookups, so the next request
//! for that key recomputes.

use save_sim::checkpoint::{CellRecord, Checkpoint, SweepManifest};
use save_sim::{CancelToken, RetryClass, SimError};
use std::collections::HashSet;
use std::path::Path;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Manifest identity for serve caches. The cache is keyed by content hash,
/// not by grid index, so the manifest's `cells` count is 0 and the
/// fingerprint only pins the schema — any daemon can reopen any cache dir.
fn cache_manifest() -> SweepManifest {
    SweepManifest::new("save-serve-cache", "memoized cell results keyed by CellSpec hash", 0, [
        "save-serve-cache",
        "keyed-by:cell-spec-fnv1a",
    ])
}

struct CacheInner {
    ck: Checkpoint,
    in_flight: HashSet<u64>,
}

/// Outcome of [`ResultCache::claim`].
#[derive(Debug)]
pub enum Claim {
    /// A final record exists; serve it without re-simulation.
    Hit(CellRecord),
    /// The caller now owns the key and must call
    /// [`ResultCache::complete`] or [`ResultCache::release`].
    Compute,
    /// Cancelled while waiting for another thread's computation.
    Cancelled,
}

/// See module docs.
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    cv: Condvar,
}

/// Whether a journaled record satisfies future lookups: successes always,
/// failures only when their kind is classified permanent (deterministic
/// re-execution would fail identically). Unknown kinds recompute — the
/// conservative choice when an older journal meets a newer binary.
fn is_final(rec: &CellRecord) -> bool {
    rec.ok()
        || matches!(SimError::retry_class_of_kind(&rec.error_kind), Some(RetryClass::Permanent))
}

impl ResultCache {
    /// Opens (or creates) the cache at `dir`, recovering all journaled
    /// records — this is the daemon-restart recovery path.
    pub fn open(dir: &Path) -> Result<Self, SimError> {
        let ck = Checkpoint::open(dir, &cache_manifest(), true)?;
        Ok(ResultCache {
            inner: Mutex::new(CacheInner { ck, in_flight: HashSet::new() }),
            cv: Condvar::new(),
        })
    }

    /// Number of records currently in the cache.
    pub fn records(&self) -> usize {
        self.inner.lock().expect("cache poisoned").ck.done_map().len()
    }

    /// Number of records recovered from disk when the cache was opened.
    pub fn recovered(&self) -> usize {
        self.inner.lock().expect("cache poisoned").ck.resumed_cells()
    }

    /// Looks `key` up, claiming it for computation on a miss. If another
    /// thread holds the claim, blocks until that computation finishes
    /// (then serves its record, or claims if the record was transient) or
    /// until `cancel` latches.
    pub fn claim(&self, key: u64, cancel: &CancelToken) -> Claim {
        let mut g = self.inner.lock().expect("cache poisoned");
        loop {
            if let Some(rec) = g.ck.done_map().get(&key) {
                if is_final(rec) {
                    return Claim::Hit(rec.clone());
                }
            }
            if !g.in_flight.contains(&key) {
                g.in_flight.insert(key);
                return Claim::Compute;
            }
            if cancel.is_cancelled() {
                return Claim::Cancelled;
            }
            let (g2, _) = self
                .cv
                .wait_timeout(g, Duration::from_millis(25))
                .expect("cache poisoned");
            g = g2;
        }
    }

    /// Journals `rec` (keyed by `rec.cell`), releases the claim, and wakes
    /// waiters. Call for successes *and* failures — transient failure
    /// records become history (latest-record-wins) without satisfying
    /// future lookups.
    pub fn complete(&self, rec: CellRecord) -> Result<(), SimError> {
        let mut g = self.inner.lock().expect("cache poisoned");
        g.in_flight.remove(&rec.cell);
        let r = g.ck.record(rec);
        self.cv.notify_all();
        r
    }

    /// Releases a claim without journaling anything — used when a
    /// computation was cancelled (there is no result to remember; the
    /// journal stays resumable).
    pub fn release(&self, key: u64) {
        let mut g = self.inner.lock().expect("cache poisoned");
        g.in_flight.remove(&key);
        self.cv.notify_all();
    }

    /// Journals a record *without* touching the claim — the scheduler's
    /// respawn monitor uses this to leave a `worker-lost` line for a cell
    /// whose worker died while the cell is requeued under its live claim.
    pub fn journal_event(&self, rec: CellRecord) -> Result<(), SimError> {
        let mut g = self.inner.lock().expect("cache poisoned");
        g.ck.record(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("save-serve-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn ok_rec(key: u64, secs: f64) -> CellRecord {
        CellRecord {
            cell: key,
            secs_bits: secs.to_bits(),
            cycles: 100,
            attempts: 1,
            error_kind: String::new(),
        }
    }

    #[test]
    fn hit_after_complete_and_across_reopen() {
        let dir = tmpdir("reopen");
        let cache = ResultCache::open(&dir).unwrap();
        let tok = CancelToken::new();
        assert!(matches!(cache.claim(7, &tok), Claim::Compute));
        cache.complete(ok_rec(7, 0.25)).unwrap();
        match cache.claim(7, &tok) {
            Claim::Hit(rec) => assert_eq!(rec.secs(), 0.25),
            other => panic!("expected hit, got {other:?}"),
        }
        drop(cache);

        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.recovered(), 1, "restart recovers journaled results");
        match cache.claim(7, &tok) {
            Claim::Hit(rec) => assert_eq!(rec.secs(), 0.25),
            other => panic!("expected hit after reopen, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn permanent_failures_are_served_transient_ones_recompute() {
        let dir = tmpdir("final");
        let cache = ResultCache::open(&dir).unwrap();
        let tok = CancelToken::new();

        assert!(matches!(cache.claim(1, &tok), Claim::Compute));
        cache
            .complete(CellRecord {
                cell: 1,
                secs_bits: f64::NAN.to_bits(),
                cycles: 0,
                attempts: 1,
                error_kind: "verify-mismatch".into(),
            })
            .unwrap();
        match cache.claim(1, &tok) {
            Claim::Hit(rec) => assert_eq!(rec.error_kind, "verify-mismatch"),
            other => panic!("permanent failure should be served, got {other:?}"),
        }

        assert!(matches!(cache.claim(2, &tok), Claim::Compute));
        cache
            .complete(CellRecord {
                cell: 2,
                secs_bits: f64::NAN.to_bits(),
                cycles: 0,
                attempts: 3,
                error_kind: "deadline".into(),
            })
            .unwrap();
        assert!(
            matches!(cache.claim(2, &tok), Claim::Compute),
            "transient failure must be recomputed, not served"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn waiting_claim_is_cancellable() {
        let cache = ResultCache::open(&tmpdir("cancel")).unwrap();
        let tok = CancelToken::new();
        assert!(matches!(cache.claim(9, &tok), Claim::Compute));
        tok.cancel();
        assert!(matches!(cache.claim(9, &tok), Claim::Cancelled));
        cache.release(9);
    }
}
