//! The save-serve wire protocol: JSON lines over TCP.
//!
//! One request or response per line, externally-tagged enum JSON exactly as
//! the vendored `serde_json` renders it. JSON lines keeps the protocol
//! debuggable with `nc` and keeps the daemon free of any async runtime —
//! a blocking [`std::io::BufRead`] loop per connection is all it takes.
//!
//! Framing rules:
//!
//! * every message is one `\n`-terminated line;
//! * the server answers `Submit` with either `Rejected` (admission control
//!   said no — retry after the hinted delay) or `Accepted`, followed by one
//!   `Cell` per submitted cell **in completion order**, followed by exactly
//!   one `Done`;
//! * `Hello`/`Status` are answered with a single message each;
//! * anything unparseable is answered with `Error` and the connection is
//!   closed (a protocol error is permanent — see
//!   [`save_sim::SimError::Protocol`]).

use save_sim::{CellSpec, SimError};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Read, Write};

/// Wire-format version, exchanged in `Hello`/`Status` so mismatched
/// client/daemon builds fail loudly instead of mis-parsing.
pub const PROTOCOL_VERSION: u32 = 1;

/// Fault injection for crash testing. Threads cannot be SIGKILLed, so
/// "kill a worker mid-cell" is injected at the protocol level: a faulted
/// cell panics *outside* the per-cell isolation boundary, killing its
/// worker thread exactly as an abort in kernel code would. The scheduler's
/// respawn monitor must then journal the loss, requeue the cell (fault
/// cleared), and bring up a replacement worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// Kill the worker thread that picks this cell up (once).
    KillWorker,
}

/// One cell of a submitted job: a client-chosen label plus the
/// self-contained [`CellSpec`] that determines the result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NamedCell {
    /// Client-chosen label echoed back in the matching [`CellResult`].
    pub label: String,
    /// The cell to simulate.
    pub spec: CellSpec,
    /// Optional crash-test fault (see [`Fault`]).
    #[serde(default)]
    pub fault: Option<Fault>,
}

/// Client → daemon messages.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Request {
    /// Version/stats handshake.
    Hello,
    /// Snapshot of daemon statistics.
    Status,
    /// Submit a named job of cells.
    Submit {
        /// Job name (for logs and the `Done` summary).
        name: String,
        /// The cells to run.
        cells: Vec<NamedCell>,
    },
    /// Ask the daemon to stop admitting work and shut down gracefully —
    /// the programmatic equivalent of one SIGTERM.
    Drain,
}

/// One finished (or cache-served) cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellResult {
    /// The label the client attached in [`NamedCell`].
    pub label: String,
    /// Index of the cell within its job's `cells` vector.
    pub index: u64,
    /// The memo-cache key ([`CellSpec::cache_key`]) the result is filed
    /// under.
    pub key: u64,
    /// `f64::to_bits` of the cell's seconds (NaN bits on failure) — raw
    /// bits so remote results are bit-identical to local sweeps.
    pub secs_bits: u64,
    /// Simulated cycles (0 on failure).
    pub cycles: u64,
    /// Attempts the final execution took (0 when served from cache).
    pub attempts: u32,
    /// `SimError::kind()` tag when the cell failed, else empty.
    #[serde(default)]
    pub error_kind: String,
    /// Whether the result came from the memo cache without re-simulation.
    pub cached: bool,
}

impl CellResult {
    /// The cell's seconds value.
    pub fn secs(&self) -> f64 {
        f64::from_bits(self.secs_bits)
    }

    /// Whether the cell succeeded.
    pub fn ok(&self) -> bool {
        self.error_kind.is_empty()
    }
}

/// Daemon statistics, returned by `Hello` and `Status`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeStats {
    /// [`PROTOCOL_VERSION`] of the daemon.
    pub version: u32,
    /// Worker-pool size.
    pub workers: usize,
    /// Admission-control capacity (max queued + running cells).
    pub capacity: usize,
    /// Cells currently admitted but not yet completed.
    pub queued: usize,
    /// Records in the memo cache (journal-backed, survives restarts).
    pub cached_records: usize,
    /// Jobs accepted since startup.
    pub jobs_accepted: u64,
    /// Jobs rejected by admission control since startup.
    pub jobs_rejected: u64,
    /// Worker threads lost to crashes and respawned since startup.
    pub workers_respawned: u64,
    /// Whether the daemon is draining (no longer admitting work).
    pub draining: bool,
}

/// Daemon → client messages.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Response {
    /// Handshake reply.
    Hello {
        /// Daemon statistics snapshot.
        stats: ServeStats,
    },
    /// Statistics snapshot.
    Status {
        /// Daemon statistics snapshot.
        stats: ServeStats,
    },
    /// The job was admitted; `Cell` messages follow.
    Accepted {
        /// Echo of the job name.
        job: String,
        /// Number of cells admitted.
        cells: usize,
    },
    /// Admission control refused the job; resubmit after the hinted delay.
    Rejected {
        /// Why (queue full, draining, …).
        reason: String,
        /// Suggested client backoff before resubmitting.
        retry_after_ms: u64,
    },
    /// One completed cell (streamed in completion order).
    Cell {
        /// The result.
        result: CellResult,
    },
    /// End of a job's result stream.
    Done {
        /// Echo of the job name.
        job: String,
        /// Cells that succeeded.
        ok: usize,
        /// Cells that ultimately failed.
        failed: usize,
        /// Cells served from the memo cache (subset of `ok`/`failed`).
        cached: usize,
        /// Whether the job was cut short by cancellation.
        cancelled: bool,
    },
    /// Acknowledges a `Drain` request.
    Draining,
    /// Protocol-level failure; the daemon closes the connection after this.
    Error {
        /// What went wrong.
        what: String,
    },
}

/// Serializes `msg` as one JSON line and flushes it.
pub fn write_line<T: Serialize>(w: &mut impl Write, msg: &T) -> Result<(), SimError> {
    let body = serde_json::to_string(msg)
        .map_err(|e| SimError::Protocol { what: format!("serialize message: {e}") })?;
    w.write_all(body.as_bytes())
        .and_then(|()| w.write_all(b"\n"))
        .and_then(|()| w.flush())
        .map_err(|e| SimError::Io { what: format!("write message: {e}") })
}

/// What one poll of a [`LineReader`] produced.
#[derive(Debug)]
pub enum LineIn<T> {
    /// A complete message.
    Msg(T),
    /// The peer closed the connection.
    Eof,
    /// The read timed out before a full line arrived (only with a read
    /// timeout configured on the underlying stream). Any partial bytes are
    /// retained, so timeouts never tear messages.
    Timeout,
}

/// Incremental JSON-lines reader that is robust to read timeouts: bytes of
/// a partially received line survive a `Timeout` poll and are completed by
/// a later one. This is what lets the daemon's connection threads wake up
/// periodically to notice a drain without losing protocol framing.
pub struct LineReader<R: Read> {
    inner: BufReader<R>,
    buf: String,
}

impl<R: Read> LineReader<R> {
    /// Wraps `r`.
    pub fn new(r: R) -> Self {
        LineReader { inner: BufReader::new(r), buf: String::new() }
    }

    /// Reads (or continues reading) one line and parses it as `T`.
    pub fn read<T: Deserialize>(&mut self) -> Result<LineIn<T>, SimError> {
        use std::io::ErrorKind;
        match self.inner.read_line(&mut self.buf) {
            Ok(0) => {
                if self.buf.trim().is_empty() {
                    Ok(LineIn::Eof)
                } else {
                    // Peer died mid-line: surface the torn message.
                    Err(SimError::Protocol {
                        what: format!("connection closed mid-message ({} bytes)", self.buf.len()),
                    })
                }
            }
            Ok(_) => {
                let line = std::mem::take(&mut self.buf);
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    // Tolerate blank keep-alive lines.
                    return Ok(LineIn::Timeout);
                }
                let msg = serde_json::from_str::<T>(trimmed).map_err(|e| SimError::Protocol {
                    what: format!("malformed message ({e}): {trimmed}"),
                })?;
                Ok(LineIn::Msg(msg))
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                Ok(LineIn::Timeout)
            }
            Err(e) => Err(SimError::Io { what: format!("read message: {e}") }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use save_sim::runner::{ConfigKind, MachineConfig};
    use save_sim::CellSpec;

    fn spec() -> CellSpec {
        use save_kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};
        let w = GemmWorkload::dense(
            "wire",
            GemmKernelSpec {
                m_tiles: 2,
                n_vecs: 2,
                pattern: BroadcastPattern::Explicit,
                precision: Precision::F32,
            },
            8,
            1,
        );
        CellSpec::new(w, ConfigKind::Save2Vpu, MachineConfig::default(), 42)
    }

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Hello,
            Request::Status,
            Request::Drain,
            Request::Submit {
                name: "fig14".into(),
                cells: vec![NamedCell {
                    label: "cell(0.5,0.5)".into(),
                    spec: spec(),
                    fault: Some(Fault::KillWorker),
                }],
            },
        ];
        let mut wire = Vec::new();
        for r in &reqs {
            write_line(&mut wire, r).unwrap();
        }
        let mut lr = LineReader::new(&wire[..]);
        for want in &reqs {
            match lr.read::<Request>().unwrap() {
                LineIn::Msg(got) => {
                    assert_eq!(serde_json::to_string(&got).unwrap(), serde_json::to_string(want).unwrap())
                }
                other => panic!("expected message, got {other:?}"),
            }
        }
        assert!(matches!(lr.read::<Request>().unwrap(), LineIn::Eof));
    }

    #[test]
    fn torn_final_message_is_a_protocol_error() {
        let mut wire = Vec::new();
        write_line(&mut wire, &Request::Hello).unwrap();
        wire.extend_from_slice(b"{\"Submit\":{\"na"); // no newline, then EOF
        let mut lr = LineReader::new(&wire[..]);
        assert!(matches!(lr.read::<Request>().unwrap(), LineIn::Msg(Request::Hello)));
        let err = lr.read::<Request>().unwrap_err();
        assert_eq!(err.kind(), "protocol");
    }

    #[test]
    fn malformed_line_is_a_protocol_error() {
        let mut lr = LineReader::new(&b"this is not json\n"[..]);
        let err = lr.read::<Request>().unwrap_err();
        assert_eq!(err.kind(), "protocol");
        assert_eq!(err.retry_class(), save_sim::RetryClass::Permanent);
    }
}
