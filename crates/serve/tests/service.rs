//! End-to-end daemon tests — the acceptance criteria of DESIGN.md §5g.
//!
//! Each test drives the real `save-serve` binary over TCP:
//!
//! * remote results are bit-identical to a local [`Surface::sweep`], and a
//!   resubmission is served entirely from the memo cache;
//! * a worker killed mid-cell (injected [`Fault::KillWorker`]) is
//!   respawned and the cell still completes with the right bits;
//! * a daemon SIGKILLed mid-job recovers its journal on restart and serves
//!   the already-completed cells from cache, bit-identically;
//! * one SIGTERM drains gracefully to exit 0; a second mid-drain signal
//!   cancels the remaining cells and exits 130.

use save_kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};
use save_serve::{Client, Fault, NamedCell};
use save_sim::{CellSpec, ConfigKind, MachineConfig, Surface};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn wl(k_total: usize, tiles: usize) -> GemmWorkload {
    GemmWorkload::dense(
        "service",
        GemmKernelSpec {
            m_tiles: 4,
            n_vecs: 2,
            pattern: BroadcastPattern::Explicit,
            precision: Precision::F32,
        },
        k_total,
        tiles,
    )
}

/// Grid cells in the same row-major (a outer, b inner) order and with the
/// same per-point seed as [`Surface::sweep`], so bits are comparable.
fn grid_cells(w: &GemmWorkload, grid: &[f64]) -> Vec<NamedCell> {
    let machine = MachineConfig::default();
    let mut cells = Vec::new();
    for &a in grid {
        for &b in grid {
            cells.push(NamedCell {
                label: format!("cell({a:.3},{b:.3})"),
                spec: CellSpec::new(
                    w.clone().with_sparsity(a, b),
                    ConfigKind::Save2Vpu,
                    machine,
                    Surface::point_seed(a, b),
                ),
                fault: None,
            });
        }
    }
    cells
}

fn local_reference_bits(w: &GemmWorkload, grid: &[f64]) -> Vec<u64> {
    Surface::sweep(w, ConfigKind::Save2Vpu, &MachineConfig::default(), grid, grid, 2)
        .unwrap()
        .secs
        .iter()
        .map(|s| s.to_bits())
        .collect()
}

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn start(cache_dir: &Path, extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_save-serve"))
            .args(["--listen", "127.0.0.1:0", "--cache-dir"])
            .arg(cache_dir)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn save-serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("read listen line");
        let addr = line
            .trim()
            .strip_prefix("save-serve listening on ")
            .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
            .to_string();
        Daemon { child, addr }
    }

    fn signal_term(&self) {
        let ok = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .expect("run kill")
            .success();
        assert!(ok, "kill -TERM failed");
    }

    fn wait_code(mut self) -> i32 {
        self.child.wait().expect("wait daemon").code().expect("daemon exit code")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("save-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn daemon_matches_local_sweep_bits_and_memoizes_resubmission() {
    let dir = tmpdir("bits");
    let w = wl(32, 4);
    let grid = [0.0, 0.5];
    let reference = local_reference_bits(&w, &grid);
    let cells = grid_cells(&w, &grid);

    let daemon = Daemon::start(&dir, &["--workers", "2"]);
    let mut client = Client::connect(&daemon.addr).unwrap();

    let mut bits = vec![0u64; cells.len()];
    let done = client
        .submit("bits", &cells, |r| {
            assert!(r.ok(), "cell {} failed: {}", r.label, r.error_kind);
            bits[r.index as usize] = r.secs_bits;
        })
        .unwrap();
    assert_eq!(done.ok, cells.len());
    assert_eq!(done.cached, 0, "first submission computes everything");
    assert_eq!(bits, reference, "remote bits must equal the local sweep");

    let mut again = vec![0u64; cells.len()];
    let done = client
        .submit("bits-again", &cells, |r| {
            assert!(r.cached, "cell {} should be served from cache", r.label);
            again[r.index as usize] = r.secs_bits;
        })
        .unwrap();
    assert_eq!(done.cached, cells.len(), "resubmission is fully memoized");
    assert_eq!(again, reference, "cache hits are bit-identical");

    let stats = client.status().unwrap();
    assert!(stats.cached_records >= cells.len());
    client.drain().unwrap();
    drop(client);
    assert_eq!(daemon.wait_code(), 0, "drain exits 0");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_worker_is_respawned_and_the_cell_still_completes() {
    let dir = tmpdir("killworker");
    let w = wl(32, 4);
    let grid = [0.0, 0.5];
    let reference = local_reference_bits(&w, &grid);
    let mut cells = grid_cells(&w, &grid);
    cells[1].fault = Some(Fault::KillWorker);

    let daemon = Daemon::start(&dir, &["--workers", "2"]);
    let mut client = Client::connect(&daemon.addr).unwrap();
    let mut bits = vec![0u64; cells.len()];
    let done = client
        .submit("faulted", &cells, |r| {
            assert!(r.ok(), "cell {} failed: {}", r.label, r.error_kind);
            bits[r.index as usize] = r.secs_bits;
        })
        .unwrap();
    assert_eq!(done.ok, cells.len(), "the faulted cell must still complete");
    assert_eq!(bits, reference, "respawned execution keeps bit identity");
    let stats = client.status().unwrap();
    assert!(stats.workers_respawned >= 1, "the monitor must have respawned a worker");

    client.drain().unwrap();
    drop(client);
    assert_eq!(daemon.wait_code(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkilled_daemon_recovers_journal_and_serves_cache_on_restart() {
    let dir = tmpdir("sigkill");
    // Heavy enough cells (~tens of ms each) that the single worker is still
    // mid-sweep when the kill lands after the second streamed result.
    let w = wl(256, 32);
    let grid = [0.0, 0.3, 0.6];
    let reference = local_reference_bits(&w, &grid);
    let cells = grid_cells(&w, &grid);

    // One worker serializes the 9 cells; SIGKILL the daemon the moment the
    // second result is streamed (each streamed cell is already journaled).
    let mut daemon = Daemon::start(&dir, &["--workers", "1"]);
    let mut client = Client::connect(&daemon.addr).unwrap();
    let mut streamed = 0usize;
    let child = &mut daemon.child;
    let outcome = client.submit("victim", &cells, |r| {
        assert!(r.ok());
        streamed += 1;
        if streamed == 2 {
            child.kill().expect("SIGKILL daemon");
        }
    });
    assert!(outcome.is_err(), "the stream must tear when the daemon dies");
    assert!(streamed >= 2);
    daemon.child.wait().expect("reap SIGKILLed daemon");
    drop(daemon);
    drop(client);

    // Restart on the same cache dir: completed cells come back from the
    // journal (tail-repaired if the kill tore a record) and are served as
    // cache hits; the rest recompute. Bits match the local sweep either way.
    let daemon = Daemon::start(&dir, &["--workers", "2"]);
    let mut client = Client::connect(&daemon.addr).unwrap();
    assert!(
        client.status().unwrap().cached_records >= 2,
        "restart must recover the journaled cells"
    );
    let mut bits = vec![0u64; cells.len()];
    let done = client
        .submit("recovery", &cells, |r| {
            assert!(r.ok(), "cell {} failed: {}", r.label, r.error_kind);
            bits[r.index as usize] = r.secs_bits;
        })
        .unwrap();
    assert_eq!(done.ok, cells.len());
    assert!(done.cached >= 2, "recovered cells are cache-served, got {}", done.cached);
    assert_eq!(bits, reference, "recovery keeps every cell bit-identical");

    client.drain().unwrap();
    drop(client);
    assert_eq!(daemon.wait_code(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn one_sigterm_drains_to_exit_zero() {
    let dir = tmpdir("sigterm");
    let daemon = Daemon::start(&dir, &["--workers", "1"]);
    // A quick job proves the daemon was healthy before the signal.
    let mut client = Client::connect(&daemon.addr).unwrap();
    let cells = grid_cells(&wl(16, 2), &[0.5]);
    let done = client.submit("pre-drain", &cells, |_| {}).unwrap();
    assert_eq!(done.ok, 1);
    daemon.signal_term();
    drop(client);
    assert_eq!(daemon.wait_code(), 0, "first signal = graceful drain = exit 0");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn second_signal_cancels_and_exits_130() {
    let dir = tmpdir("cancel");
    let daemon = Daemon::start(&dir, &["--workers", "1"]);
    let addr = daemon.addr.clone();

    // A long job: hundreds of unique cells (distinct seeds defeat the memo
    // cache) against a single worker, so the drain after the first signal
    // has plenty of work left when the second signal arrives.
    let submitter = std::thread::spawn(move || {
        let w = wl(64, 8).with_sparsity(0.5, 0.5);
        let cells: Vec<NamedCell> = (0..400)
            .map(|i| NamedCell {
                label: format!("slow-{i}"),
                spec: CellSpec::new(
                    w.clone(),
                    ConfigKind::Save2Vpu,
                    MachineConfig::default(),
                    1_000_000 + i,
                ),
                fault: None,
            })
            .collect();
        let mut client = Client::connect(&addr).unwrap();
        // Either outcome is fine: a torn stream (daemon exited first) or a
        // completed-but-cancelled job summary.
        let _ = client.submit("long", &cells, |_| {});
    });

    std::thread::sleep(Duration::from_millis(400));
    daemon.signal_term(); // stage 1: drain
    std::thread::sleep(Duration::from_millis(200));
    daemon.signal_term(); // stage 2: cancel
    assert_eq!(daemon.wait_code(), 130, "second signal = cancelled-but-resumable = 130");
    submitter.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
