//! Contention contract of the memo cache: N racing threads submitting
//! overlapping keys must trigger **exactly one** computation per unique
//! key — everyone else waits and is served the journaled record.

use save_serve::{Claim, ResultCache};
use save_sim::checkpoint::CellRecord;
use save_sim::CancelToken;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const KEYS: u64 = 5;
const THREADS: usize = 8;

fn expected_bits(key: u64) -> u64 {
    (key as f64 * 0.5 + 0.125).to_bits()
}

#[test]
fn contended_cache_computes_each_key_exactly_once() {
    let dir =
        std::env::temp_dir().join(format!("save-serve-contention-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = Arc::new(ResultCache::open(&dir).unwrap());
    let computes: Arc<Vec<AtomicUsize>> =
        Arc::new((0..KEYS).map(|_| AtomicUsize::new(0)).collect());

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let cache = Arc::clone(&cache);
        let computes = Arc::clone(&computes);
        handles.push(std::thread::spawn(move || {
            let tok = CancelToken::new();
            // Each thread visits every key, but starting at a different
            // offset so claims overlap heavily.
            for i in 0..KEYS {
                let key = (i + t as u64) % KEYS;
                match cache.claim(key, &tok) {
                    Claim::Compute => {
                        computes[key as usize].fetch_add(1, Ordering::SeqCst);
                        // Hold the claim long enough for other threads to
                        // pile up behind it.
                        std::thread::sleep(Duration::from_millis(10));
                        cache
                            .complete(CellRecord {
                                cell: key,
                                secs_bits: expected_bits(key),
                                cycles: key,
                                attempts: 1,
                                error_kind: String::new(),
                            })
                            .unwrap();
                    }
                    Claim::Hit(rec) => {
                        assert_eq!(
                            rec.secs_bits,
                            expected_bits(key),
                            "a hit must serve the bits the single computation recorded"
                        );
                    }
                    Claim::Cancelled => panic!("nothing cancels in this test"),
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for (k, c) in computes.iter().enumerate() {
        assert_eq!(c.load(Ordering::SeqCst), 1, "key {k} must be computed exactly once");
    }
    assert_eq!(cache.records(), KEYS as usize);
    let _ = std::fs::remove_dir_all(&dir);
}
