//! Cross-crate integration: simulation determinism (both machine modes)
//! and serde round-trips of the public configuration/data types.

use save::core::CoreConfig;
use save::kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Phase, Precision};
use save::mem::MemConfig;
use save::sim::runner::run_kernel;
use save::sim::{ConfigKind, MachineConfig, MachineMode, Surface};
use save::sparsity::PruningSchedule;

fn workload() -> GemmWorkload {
    GemmWorkload::dense(
        "det",
        GemmKernelSpec {
            m_tiles: 5,
            n_vecs: 2,
            pattern: BroadcastPattern::Embedded,
            precision: Precision::F32,
        },
        24,
        2,
    )
    .with_sparsity(0.35, 0.45)
}

#[test]
fn symmetric_mode_is_deterministic() {
    let m = MachineConfig::default();
    let a = run_kernel(&workload(), ConfigKind::Save2Vpu, &m, 77, true).unwrap();
    let b = run_kernel(&workload(), ConfigKind::Save2Vpu, &m, 77, true).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.stats.vpu_ops, b.stats.vpu_ops);
    assert_eq!(a.stats.lanes_issued, b.stats.lanes_issued);
}

#[test]
fn detailed_mode_is_deterministic() {
    let m = MachineConfig { cores: 3, mode: MachineMode::Detailed, ..Default::default() };
    let a = run_kernel(&workload(), ConfigKind::Save1Vpu, &m, 99, true).unwrap();
    let b = run_kernel(&workload(), ConfigKind::Save1Vpu, &m, 99, true).unwrap();
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn seeds_change_data_not_workload_shape() {
    let m = MachineConfig::default();
    let a = run_kernel(&workload(), ConfigKind::Baseline, &m, 1, true).unwrap();
    let b = run_kernel(&workload(), ConfigKind::Baseline, &m, 2, true).unwrap();
    // Baseline timing is sparsity-insensitive; different data, same work.
    assert_eq!(a.stats.fma_uops, b.stats.fma_uops);
    assert!((a.cycles as f64 / b.cycles as f64 - 1.0).abs() < 0.05);
}

#[test]
fn config_types_roundtrip_through_serde() {
    let core = CoreConfig::save_1vpu();
    let s = serde_json::to_string(&core).expect("serialize");
    let back: CoreConfig = serde_json::from_str(&s).expect("deserialize");
    assert_eq!(core, back);

    let mem = MemConfig::default();
    let s = serde_json::to_string(&mem).expect("serialize");
    let back: MemConfig = serde_json::from_str(&s).expect("deserialize");
    assert_eq!(mem, back);

    let w = workload();
    let s = serde_json::to_string(&w).expect("serialize");
    let back: GemmWorkload = serde_json::from_str(&s).expect("deserialize");
    assert_eq!(w.spec, back.spec);
    assert_eq!(w.k_total, back.k_total);

    let sched = PruningSchedule::gnmt();
    let s = serde_json::to_string(&sched).expect("serialize");
    let back: PruningSchedule = serde_json::from_str(&s).expect("deserialize");
    assert_eq!(sched, back);
}

#[test]
fn surfaces_roundtrip_through_serde() {
    let surf = Surface {
        a_levels: vec![0.0, 0.5],
        b_levels: vec![0.0, 1.0],
        secs: vec![4.0, 3.0, 2.0, 1.0],
    };
    let s = serde_json::to_string(&surf).expect("serialize");
    let back: Surface = serde_json::from_str(&s).expect("deserialize");
    assert_eq!(back.interp(0.25, 0.5), surf.interp(0.25, 0.5));
}

#[test]
fn workload_phase_coverage_across_the_shape_tables() {
    // Every shape in every table produces buildable workloads for every
    // phase and precision — no panics, register budget always respected.
    for shape in save::kernels::shapes::vgg16().iter().chain(save::kernels::shapes::resnet50().iter())
    {
        for phase in Phase::ALL {
            for prec in [Precision::F32, Precision::Mixed] {
                let mut w = shape.workload(phase, prec);
                w.tiles = 1;
                w.k_total = 16;
                let b = w.build(1);
                assert!(b.program.fma_count() > 0, "{} {phase} {prec}", shape.name);
            }
        }
    }
    for cell in save::kernels::shapes::gnmt(32) {
        for phase in [Phase::Forward, Phase::BackwardInput] {
            let mut w = cell.workload(phase, Precision::F32);
            w.tiles = 2;
            w.k_total = 16;
            w.b_panel_tiles = 1;
            assert!(w.build(1).program.fma_count() > 0);
        }
    }
}
