//! End-to-end sanitizer behaviour at the sim layer: clean kernels stay
//! clean (and keep identical timing) under Full checking, injected faults
//! surface as typed [`SimError::InvariantViolation`] results, and a
//! violation serializes through the sweep failure-report machinery the way
//! `failures.json` consumers will see it.

use save::core::{CoreConfig, FaultKind, FaultPlan, SanitizeLevel};
use save::kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};
use save::sim::runner::{run_kernel_custom, MachineConfig};
use save::sim::{ConfigKind, FailureReport, SimError};

fn gemm() -> GemmWorkload {
    GemmWorkload::dense(
        "san-gemm",
        GemmKernelSpec {
            m_tiles: 6,
            n_vecs: 3,
            pattern: BroadcastPattern::Explicit,
            precision: Precision::F32,
        },
        48,
        2,
    )
    .with_sparsity(0.5, 0.3)
}

fn cfg_with(sanitize: SanitizeLevel) -> CoreConfig {
    CoreConfig { sanitize, ..ConfigKind::Save2Vpu.core_config() }
}

#[test]
fn clean_gemm_is_timing_identical_under_full_sanitize() {
    let machine = MachineConfig::default();
    let off = run_kernel_custom(&gemm(), &cfg_with(SanitizeLevel::Off), &machine, 1, true)
        .expect("clean run (sanitize off)");
    let full = run_kernel_custom(&gemm(), &cfg_with(SanitizeLevel::Full), &machine, 1, true)
        .expect("clean run (sanitize full)");
    assert!(off.completed && full.completed);
    assert!(off.verified && full.verified);
    assert_eq!(off.cycles, full.cycles, "sanitizer perturbed the timing model");
}

#[test]
fn injected_fault_surfaces_as_typed_invariant_violation() {
    let mut cfg = cfg_with(SanitizeLevel::Full);
    cfg.fault = Some(FaultPlan::new(FaultKind::FlipElmBit, 50, 3));
    let err = run_kernel_custom(&gemm(), &cfg, &MachineConfig::default(), 1, true)
        .expect_err("corrupted ELM must abort the run");
    match err {
        SimError::InvariantViolation { kernel, report, .. } => {
            assert_eq!(kernel, "san-gemm");
            assert_eq!(report.invariant, "lane-conservation");
            assert!(report.cycle >= 50);
        }
        other => panic!("expected InvariantViolation, got {other}"),
    }
}

#[test]
fn violation_rolls_up_into_a_failure_report() {
    // The shape a sweep's failures.json takes when a job aborts on a
    // sanitizer violation: kind tag, kernel name, and the full witness all
    // round-trip through serde.
    let mut cfg = cfg_with(SanitizeLevel::Full);
    cfg.fault = Some(FaultPlan::new(FaultKind::FreeLivePhys, 50, 3));
    let results: Vec<Result<u64, SimError>> =
        vec![Ok(1), run_kernel_custom(&gemm(), &cfg, &MachineConfig::default(), 1, true)
            .map(|r| r.cycles)];
    let report = FailureReport::from_results(&results, |i| Some(format!("job-{i}")));
    assert_eq!(report.total_jobs, 2);
    assert_eq!(report.succeeded, 1);
    assert_eq!(report.failures.len(), 1);
    let fail = &report.failures[0];
    assert_eq!(fail.error.kind(), "invariant-violation");
    match &fail.error {
        SimError::InvariantViolation { kernel, report, .. } => {
            assert_eq!(kernel, "san-gemm");
            assert_eq!(report.invariant, "rename-hygiene");
            assert!(!report.witness.is_empty());
        }
        other => panic!("expected InvariantViolation in the report, got {other}"),
    }
    let json = serde_json::to_string(&report).expect("failure report serializes");
    if json.contains("__serde_json_stub__") {
        // Offline dev stub cannot round-trip; the serialize path above still
        // proves the Serialize impls are object-safe end to end.
        return;
    }
    let back: FailureReport = serde_json::from_str(&json).expect("failure report round-trips");
    match &back.failures[0].error {
        SimError::InvariantViolation { kernel, report, .. } => {
            assert_eq!(kernel, "san-gemm");
            assert_eq!(report.invariant, "rename-hygiene");
            assert!(!report.witness.is_empty());
        }
        other => panic!("round-trip lost the violation payload: {other}"),
    }
}

#[test]
fn sanitize_full_slowdown_is_bounded() {
    // Acceptance bound from the issue: a Full-sanitize fig12-style GEMM run
    // finishes with zero violations at no more than ~2x the wall-clock of
    // an unchecked run. Wall-clock on shared CI hosts is noisy, so allow
    // slack above the nominal 2x while still catching accidental
    // quadratic-cost checkers.
    let machine = MachineConfig::default();
    let t0 = std::time::Instant::now();
    let off = run_kernel_custom(&gemm(), &cfg_with(SanitizeLevel::Off), &machine, 2, false)
        .expect("clean run (off)");
    let d_off = t0.elapsed();
    let t1 = std::time::Instant::now();
    let full = run_kernel_custom(&gemm(), &cfg_with(SanitizeLevel::Full), &machine, 2, false)
        .expect("clean run (full)");
    let d_full = t1.elapsed();
    assert!(off.completed && full.completed);
    let ratio = d_full.as_secs_f64() / d_off.as_secs_f64().max(1e-9);
    assert!(ratio < 4.0, "Full sanitize cost {ratio:.1}x (nominal bound 2x, hard bound 4x)");
}
