//! Workspace-level integration tests: real layer kernels through the full
//! simulator stack, estimator sanity, and cheap versions of the paper's
//! qualitative landmarks.

use save::core::{CoreConfig, SchedulerKind};
use save::kernels::{Phase, Precision};
use save::sim::runner::{run_kernel, run_kernel_custom};
use save::sim::{ConfigKind, Estimator, EstimatorConfig, MachineConfig, MachineMode, Network};
use save::sparsity::NetKind;

fn small_workload(name: &str, phase: Phase, prec: Precision) -> save::kernels::GemmWorkload {
    let mut w = save::kernels::shapes::conv_by_name(name).expect("shape").workload(phase, prec);
    w.tiles = 2;
    w.k_total = 48;
    w
}

#[test]
fn named_kernels_run_correctly_on_every_operating_point() {
    let machine = MachineConfig::default();
    for name in ["ResNet2_2", "ResNet3_2", "ResNet4_1a", "ResNet5_1a"] {
        for phase in [Phase::Forward, Phase::BackwardInput] {
            for prec in [Precision::F32, Precision::Mixed] {
                let w = small_workload(name, phase, prec).with_sparsity(0.3, 0.5);
                for kind in ConfigKind::ALL {
                    let r = run_kernel(&w, kind, &machine, 5, true).unwrap();
                    assert!(r.completed && r.verified, "{name} {phase} {prec} {kind:?}");
                }
            }
        }
    }
}

#[test]
fn detailed_multicore_matches_reference_for_lstm() {
    let cell = save::kernels::shapes::gnmt(64).remove(0);
    let mut w = cell.workload(Phase::Forward, Precision::F32).with_sparsity(0.2, 0.9);
    w.tiles = 4;
    w.b_panel_tiles = 2;
    w.k_total = 32;
    let m = MachineConfig { cores: 4, mode: MachineMode::Detailed, ..Default::default() };
    let r = run_kernel(&w, ConfigKind::Save2Vpu, &m, 11, true).unwrap();
    assert!(r.completed && r.verified);
}

#[test]
fn landmark_bs_and_nbs_both_deliver_speedup() {
    let machine = MachineConfig::default();
    let dense = small_workload("ResNet3_2", Phase::Forward, Precision::F32);
    let t_dense = run_kernel(&dense, ConfigKind::Save2Vpu, &machine, 3, false).unwrap().seconds;
    let bs = dense.clone().with_sparsity(0.6, 0.0);
    let nbs = dense.clone().with_sparsity(0.0, 0.6);
    let t_bs = run_kernel(&bs, ConfigKind::Save2Vpu, &machine, 3, false).unwrap().seconds;
    let t_nbs = run_kernel(&nbs, ConfigKind::Save2Vpu, &machine, 3, false).unwrap().seconds;
    assert!(t_bs < t_dense * 0.9, "BS must speed up SAVE ({t_bs} vs {t_dense})");
    assert!(t_nbs < t_dense * 0.9, "NBS must speed up SAVE ({t_nbs} vs {t_dense})");
    // The baseline is insensitive to sparsity.
    let b_dense = run_kernel(&dense, ConfigKind::Baseline, &machine, 3, false).unwrap().seconds;
    let b_sparse = run_kernel(&nbs, ConfigKind::Baseline, &machine, 3, false).unwrap().seconds;
    assert!((b_dense / b_sparse - 1.0).abs() < 0.05, "baseline must not exploit sparsity");
}

#[test]
fn landmark_speedup_monotone_in_nbs() {
    let machine = MachineConfig::default();
    let w0 = small_workload("ResNet5_1a", Phase::BackwardInput, Precision::F32);
    let mut last = f64::INFINITY;
    for nbs in [0.0, 0.3, 0.6, 0.9] {
        let w = w0.clone().with_sparsity(0.0, nbs);
        let t = run_kernel(&w, ConfigKind::Save2Vpu, &machine, 7, false).unwrap().seconds;
        assert!(t <= last * 1.03, "time must not grow with sparsity (nbs={nbs})");
        last = t;
    }
}

#[test]
fn hc_pays_latency_vc_preserves_lane_order() {
    // Horizontal compression must carry its +6-cycle crossbar penalty.
    let machine = MachineConfig::default();
    let w = small_workload("ResNet3_2", Phase::Forward, Precision::F32); // dense
    let vc = run_kernel_custom(&w, &CoreConfig::save_2vpu(), &machine, 9, true).unwrap();
    let hc = run_kernel_custom(
        &w,
        &CoreConfig { scheduler: SchedulerKind::Horizontal, ..CoreConfig::save_2vpu() },
        &machine,
        9,
        true,
    )
    .unwrap();
    assert!(vc.verified && hc.verified);
    assert!(hc.cycles >= vc.cycles, "dense HC must not beat VC (no imbalance to fix)");
}

#[test]
fn estimator_reproduces_fig14_ordering_on_truncated_nets() {
    // With 3 layers per net and a 3-level grid this runs in seconds and
    // still shows the qualitative Fig 14 ordering: pruned ResNet-50 beats
    // dense ResNet-50; every SAVE config beats baseline.
    let mut cfg = EstimatorConfig::default();
    cfg.machine.cores = 8;
    cfg.grid = vec![0.0, 0.45, 0.9];
    let est = Estimator::new(cfg);
    let mut speedups = std::collections::HashMap::new();
    for kind in [NetKind::ResNet50Dense, NetKind::ResNet50Pruned] {
        let mut net = Network::build(kind);
        net.layers = net.layers.into_iter().skip(2).take(3).collect();
        net.epochs = 4;
        let inf = est.estimate_inference(&net, Precision::F32).unwrap();
        let sp = inf.baseline.total() / inf.dynamic.total();
        assert!(sp > 1.0, "{kind:?} must speed up, got {sp}");
        speedups.insert(kind, sp);
    }
    assert!(
        speedups[&NetKind::ResNet50Pruned] > speedups[&NetKind::ResNet50Dense],
        "pruning must increase the inference speedup"
    );
}

#[test]
fn mixed_precision_training_estimate_is_finite_and_ordered() {
    let mut cfg = EstimatorConfig::default();
    cfg.machine.cores = 8;
    cfg.grid = vec![0.0, 0.45, 0.9];
    let est = Estimator::new(cfg);
    let mut net = Network::build(NetKind::GnmtPruned);
    net.layers.truncate(1);
    net.epochs = 6;
    let tr = est.estimate_training(&net, Precision::Mixed).unwrap();
    for t in [tr.baseline, tr.save2, tr.save1, tr.static_, tr.dynamic] {
        assert!(t.total().is_finite() && t.total() > 0.0);
    }
    assert!(tr.dynamic.total() <= tr.baseline.total());
    assert!(tr.dynamic.total() <= tr.static_.total() + 1e-15);
}
