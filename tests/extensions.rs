//! Extension features from the paper's related-work synergies (§VIII):
//! SparseTrain-style software BS skipping and ZCOMP-style compressed
//! vector loads. Both must stay functionally exact and show their expected
//! performance characters.

use save::kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};
use save::sim::runner::run_kernel;
use save::sim::{ConfigKind, MachineConfig};

fn explicit_spec() -> GemmKernelSpec {
    GemmKernelSpec {
        m_tiles: 6,
        n_vecs: 3,
        pattern: BroadcastPattern::Explicit,
        precision: Precision::F32,
    }
}

#[test]
fn software_bs_skip_helps_on_clustered_sparsity_only() {
    // SparseTrain-style skipping branches on data: with *clustered* zeros
    // (real ReLU activations) the branches predict well and it wins; with
    // uniform random zeros the mispredictions erase the benefit — while
    // SAVE's hardware skipping is insensitive to structure.
    let machine = MachineConfig::default();
    let clustered = GemmWorkload {
        a_cluster: 16,
        ..GemmWorkload::dense("st", explicit_spec(), 48, 2).with_sparsity(0.6, 0.0)
    };
    let skipping = GemmWorkload { software_bs_skip: true, ..clustered.clone() };
    let r_plain = run_kernel(&clustered, ConfigKind::Baseline, &machine, 3, true).unwrap();
    let r_skip = run_kernel(&skipping, ConfigKind::Baseline, &machine, 3, true).unwrap();
    assert!(r_plain.completed && r_skip.completed);
    assert!(
        r_skip.cycles < r_plain.cycles,
        "software skipping must help on clustered 60% BS: {} vs {}",
        r_skip.cycles,
        r_plain.cycles
    );
    assert!(r_skip.stats.fma_uops < r_plain.stats.fma_uops);

    // Uniform random: all-zero blocks are vanishingly rare, so software
    // skipping finds nothing to skip; SAVE still wins outright.
    let uniform = GemmWorkload::dense("st", explicit_spec(), 48, 2).with_sparsity(0.6, 0.0);
    let uskip = GemmWorkload { software_bs_skip: true, ..uniform.clone() };
    let r_uplain = run_kernel(&uniform, ConfigKind::Baseline, &machine, 3, true).unwrap();
    let r_uskip = run_kernel(&uskip, ConfigKind::Baseline, &machine, 3, true).unwrap();
    assert!(
        r_uskip.cycles as f64 >= r_uplain.cycles as f64 * 0.97,
        "uniform-random software skipping must not find meaningful gains: {} vs {}",
        r_uskip.cycles,
        r_uplain.cycles
    );
    let r_usave = run_kernel(&uniform, ConfigKind::Save2Vpu, &machine, 3, true).unwrap();
    assert!(r_usave.cycles < r_uplain.cycles * 9 / 10, "SAVE is structure-insensitive");
}

#[test]
fn software_bs_skip_cannot_touch_nbs_but_save_can() {
    // SparseTrain exploits broadcasted sparsity only (§VIII); with pure NBS
    // it skips nothing, while SAVE keeps its gain.
    let machine = MachineConfig::default();
    let plain = GemmWorkload::dense("st", explicit_spec(), 48, 2).with_sparsity(0.0, 0.7);
    let skipping = GemmWorkload { software_bs_skip: true, ..plain.clone() };
    let r_plain = run_kernel(&plain, ConfigKind::Baseline, &machine, 5, true).unwrap();
    let r_skip = run_kernel(&skipping, ConfigKind::Baseline, &machine, 5, true).unwrap();
    assert_eq!(r_skip.stats.fma_uops, r_plain.stats.fma_uops, "nothing to skip");
    let r_save = run_kernel(&plain, ConfigKind::Save2Vpu, &machine, 5, true).unwrap();
    assert!(r_save.cycles < r_plain.cycles * 9 / 10);
}

#[test]
fn software_skipping_composes_with_save_by_freeing_the_front_end() {
    // SAVE's BS skip still pays allocation/commit bandwidth for the dropped
    // VFMAs (the MGU removes them after rename); software skipping removes
    // the µops before they exist. At high BS the SAVE kernel is front-end
    // bound, so the combination helps on balance — the same observation the
    // paper makes about SparCE "saving front-end bandwidth" (§VIII).
    //
    // The effect is real but small, and a single seed's zero placement can
    // tip an individual run a handful of cycles either way (the branch-skip
    // blocks perturb alignment). Sum over several seeds and allow a 1%
    // band so the assertion tests the trend, not one draw's noise.
    let machine = MachineConfig::default();
    let mut sum_save = 0u64;
    let mut sum_both = 0u64;
    for seed in [7, 11, 13] {
        let plain = GemmWorkload {
            a_cluster: 16,
            ..GemmWorkload::dense("st", explicit_spec(), 48, 2).with_sparsity(0.6, 0.0)
        };
        let skipping = GemmWorkload { software_bs_skip: true, ..plain.clone() };
        let r_save = run_kernel(&plain, ConfigKind::Save2Vpu, &machine, seed, true).unwrap();
        let r_both = run_kernel(&skipping, ConfigKind::Save2Vpu, &machine, seed, true).unwrap();
        assert!(r_save.completed && r_both.completed);
        sum_save += r_save.cycles;
        sum_both += r_both.cycles;
    }
    assert!(
        sum_both as f64 <= sum_save as f64 * 1.01,
        "SAVE+software must not be meaningfully slower than SAVE alone \
         across seeds: {sum_both} vs {sum_save}"
    );
}

fn streaming_workload(nbs: f64, compressed: bool) -> GemmWorkload {
    GemmWorkload {
        b_panel_tiles: 1, // stream every panel: bandwidth bound
        compressed_b: compressed,
        ..GemmWorkload::dense("zc", explicit_spec(), 64, 8).with_sparsity(0.2, nbs)
    }
}

#[test]
fn compressed_loads_are_functionally_exact() {
    let machine = MachineConfig::default();
    for nbs in [0.0, 0.5, 0.9] {
        let r = run_kernel(&streaming_workload(nbs, true), ConfigKind::Save2Vpu, &machine, 9, true).unwrap();
        assert!(r.completed && r.verified, "nbs={nbs}");
    }
}

#[test]
fn zcomp_lifts_the_bandwidth_cap_proportionally_to_nbs() {
    // §VIII: ZCOMP's memory reduction is proportional to SAVE's computation
    // reduction. On a streaming (bandwidth-bound) kernel, SAVE alone caps;
    // SAVE+ZCOMP keeps scaling with NBS.
    let machine = MachineConfig::default();
    let nbs = 0.8;
    let save_only = run_kernel(&streaming_workload(nbs, false), ConfigKind::Save2Vpu, &machine, 11, false).unwrap();
    let with_zcomp = run_kernel(&streaming_workload(nbs, true), ConfigKind::Save2Vpu, &machine, 11, false).unwrap();
    assert!(
        with_zcomp.cycles * 10 < save_only.cycles * 9,
        "compressed streaming must be >10% faster at 80% NBS: {} vs {}",
        with_zcomp.cycles,
        save_only.cycles
    );
    // Dense data: compression buys (almost) nothing.
    let d_plain = run_kernel(&streaming_workload(0.0, false), ConfigKind::Save2Vpu, &machine, 13, false).unwrap();
    let d_comp = run_kernel(&streaming_workload(0.0, true), ConfigKind::Save2Vpu, &machine, 13, false).unwrap();
    let ratio = d_comp.cycles as f64 / d_plain.cycles as f64;
    assert!((0.85..=1.15).contains(&ratio), "dense compression is a wash: {ratio:.2}");
}
