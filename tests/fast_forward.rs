//! Event-driven fast-forward purity: skipping provably inert cycles must
//! be invisible in every observable — cycle counts, the full statistics
//! struct, and functional outputs — across workload classes, operating
//! points, both machine modes, and with the sanitizer in the pipeline.
//!
//! These tests A/B the same (workload, config, seed) with
//! [`CoreConfig::fast_forward`] on and off and require bit-identical
//! results. The memory-streaming workload matters most: its long
//! DRAM-bound idle stretches are where fast-forward actually engages.

use save::core::{CoreConfig, SanitizeLevel};
use save::kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};
use save::sim::runner::{run_kernel_custom, ConfigKind, MachineConfig, MachineMode};

/// The three reference workload classes (mirroring perfstat's pinned sweep,
/// scaled down): compute-bound, memory-streaming, and mixed-precision.
fn workloads() -> Vec<GemmWorkload> {
    let spec_f32 = GemmKernelSpec {
        m_tiles: 6,
        n_vecs: 4,
        pattern: BroadcastPattern::Explicit,
        precision: Precision::F32,
    };
    let spec_mp = GemmKernelSpec { precision: Precision::Mixed, ..spec_f32 };
    let compute = GemmWorkload::dense("ff-compute", spec_f32, 32, 2).with_sparsity(0.3, 0.5);
    let stream = GemmWorkload {
        b_panel_tiles: 1, // stream B panels: DRAM-bound, long idle stretches
        ..GemmWorkload::dense("ff-stream", spec_f32, 32, 2).with_sparsity(0.6, 0.6)
    };
    let mixed = GemmWorkload::dense("ff-mixed", spec_mp, 32, 2).with_sparsity(0.5, 0.5);
    vec![compute, stream, mixed]
}

#[test]
fn fast_forward_is_observationally_pure() {
    let m = MachineConfig::default();
    for w in workloads() {
        for kind in ConfigKind::ALL {
            let on = kind.core_config();
            assert!(on.fast_forward, "fast-forward must default on");
            let off = CoreConfig { fast_forward: false, ..on };
            let a = run_kernel_custom(&w, &on, &m, 7, true).unwrap();
            let b = run_kernel_custom(&w, &off, &m, 7, true).unwrap();
            assert!(a.verified && b.verified, "{} {kind:?}", w.name);
            assert_eq!(a.cycles, b.cycles, "{} {kind:?}: cycle counts drifted", w.name);
            assert_eq!(a.stats, b.stats, "{} {kind:?}: statistics drifted", w.name);
        }
    }
}

#[test]
fn fast_forward_is_deterministic() {
    // Same run twice with fast-forward engaged: bit-identical everything.
    let m = MachineConfig::default();
    for w in workloads() {
        let cfg = ConfigKind::Save2Vpu.core_config();
        let a = run_kernel_custom(&w, &cfg, &m, 11, true).unwrap();
        let b = run_kernel_custom(&w, &cfg, &m, 11, true).unwrap();
        assert_eq!(a.cycles, b.cycles, "{}", w.name);
        assert_eq!(a.stats, b.stats, "{}", w.name);
    }
}

#[test]
fn fast_forward_is_pure_in_detailed_multicore() {
    // The lockstep machine may only jump when every unfinished core is
    // inert; the coordinated jump must be invisible too.
    let m = MachineConfig { cores: 4, mode: MachineMode::Detailed, ..Default::default() };
    let w = &workloads()[1]; // the streaming workload: real DRAM gaps
    let on = ConfigKind::Save2Vpu.core_config();
    let off = CoreConfig { fast_forward: false, ..on };
    let a = run_kernel_custom(w, &on, &m, 7, true).unwrap();
    let b = run_kernel_custom(w, &off, &m, 7, true).unwrap();
    assert!(a.verified && b.verified);
    assert_eq!(a.cycles, b.cycles, "multicore cycle counts drifted");
    assert_eq!(a.stats, b.stats, "multicore statistics drifted");
}

#[test]
fn fast_forward_is_pure_under_full_sanitizer() {
    // With every invariant checked every cycle, a clean run must stay
    // clean and bit-identical through the fast-forward path: skipped
    // cycles would have scanned exactly the state the probe cycle scanned.
    let m = MachineConfig::default();
    let w = &workloads()[1];
    let on = CoreConfig { sanitize: SanitizeLevel::Full, ..ConfigKind::Save2Vpu.core_config() };
    let off = CoreConfig { fast_forward: false, ..on };
    let a = run_kernel_custom(w, &on, &m, 7, true).unwrap();
    let b = run_kernel_custom(w, &off, &m, 7, true).unwrap();
    assert!(a.completed && b.completed, "sanitizer flagged a clean run");
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.stats, b.stats);
}
