//! SAVE umbrella crate: re-exports of all subsystem crates.
#![forbid(unsafe_code)]
pub use save_core as core;
pub use save_isa as isa;
pub use save_kernels as kernels;
pub use save_mem as mem;
pub use save_sim as sim;
pub use save_sparsity as sparsity;
