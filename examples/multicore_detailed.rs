//! Detailed multicore simulation: cycle-interleaves real cores over the
//! shared NUCA L3 + 2-D mesh + DRAM channels, and compares against the fast
//! symmetric mode used for the big sweeps.
//!
//! Run with: `cargo run --release --example multicore_detailed`

use save::kernels::{Phase, Precision};
use save::sim::runner::run_kernel;
use save::sim::{ConfigKind, MachineConfig, MachineMode, SimError};

fn main() -> Result<(), SimError> {
    let shape = save::kernels::shapes::conv_by_name("ResNet3_2").ok_or_else(|| {
        SimError::InvalidConfig { what: "ResNet3_2 missing from the shape table".into() }
    })?;
    let w = shape.workload(Phase::Forward, Precision::F32).with_sparsity(0.4, 0.8);

    for cores in [1usize, 4, 8] {
        let detailed = MachineConfig { cores, mode: MachineMode::Detailed, ..Default::default() };
        let symmetric = MachineConfig { cores, mode: MachineMode::Symmetric, ..Default::default() };
        let rd = run_kernel(&w, ConfigKind::Save2Vpu, &detailed, 1, true)?;
        let rs = run_kernel(&w, ConfigKind::Save2Vpu, &symmetric, 1, true)?;
        println!(
            "{cores:>2} cores: detailed {:>8} cycles (slowest core), symmetric {:>8} cycles, ratio {:.2}",
            rd.cycles,
            rs.cycles,
            rd.cycles as f64 / rs.cycles as f64
        );
    }
    println!("\nEvery core's numerical output was verified against its reference.");
    println!("The symmetric mode (used for the parameter sweeps) tracks the detailed");
    println!("mode closely for the compute-bound kernels that dominate the evaluation.");
    Ok(())
}
