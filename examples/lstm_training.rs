//! GNMT LSTM-cell training under the §VI pruning schedule: shows how the
//! SAVE speedup of a memory-bound LSTM kernel evolves as weights are pruned
//! from 0% to 90% over 340K iterations (the Fig 14d scenario, one cell).
//!
//! Run with: `cargo run --release --example lstm_training`

use save::kernels::{Phase, Precision};
use save::sim::runner::run_kernel;
use save::sim::{ConfigKind, MachineConfig, SimError};
use save::sparsity::PruningSchedule;

fn main() -> Result<(), SimError> {
    let cell = save::kernels::shapes::gnmt(64).remove(1); // a mid-stack encoder cell
    let schedule = PruningSchedule::gnmt();
    let machine = MachineConfig::default();
    let w0 = cell.workload(Phase::Forward, Precision::F32);

    println!("cell {} — weights stream from memory (2 panels), dropout BS = 20%", cell.name);
    println!("{:>10}  {:>8}  {:>12}  {:>12}", "iteration", "sparsity", "2 VPUs", "1 VPU");
    for step in (0..=340_000).step_by(34_000) {
        let ws = schedule.sparsity_at(step as f64);
        let w = w0.clone().with_sparsity(0.2, ws);
        let tb = run_kernel(&w, ConfigKind::Baseline, &machine, step as u64, false)?.seconds;
        let t2 = run_kernel(&w, ConfigKind::Save2Vpu, &machine, step as u64, false)?.seconds;
        let t1 = run_kernel(&w, ConfigKind::Save1Vpu, &machine, step as u64, false)?.seconds;
        println!(
            "{:>10}  {:>7.0}%  {:>10.2}x  {:>10.2}x",
            step,
            ws * 100.0,
            tb / t2,
            tb / t1
        );
    }
    println!("\nNote the paper's §VII-A observation: with 2 VPUs the LSTM speedup caps");
    println!("once weights are ~20% pruned (memory bound); with 1 VPU at 2.1 GHz the");
    println!("speedup keeps growing until much deeper pruning.");
    Ok(())
}
