//! Whole-network inference on pruned ResNet-50 (the Fig 14a scenario):
//! estimates the end-to-end speedup of SAVE at realistic end-of-training
//! sparsity, including the per-kernel dynamic 1-vs-2-VPU selection.
//!
//! Run with: `cargo run --release --example pruned_inference`
//! (takes a couple of minutes: it sweeps every unique layer shape).

use save::kernels::Precision;
use save::sim::{Estimator, EstimatorConfig, Network, SimError};
use save::sparsity::NetKind;

fn main() -> Result<(), SimError> {
    let cfg = EstimatorConfig { grid: vec![0.0, 0.3, 0.6, 0.9], ..Default::default() };
    let est = Estimator::new(cfg);

    let net = Network::build(NetKind::ResNet50Pruned);
    println!(
        "pruned ResNet-50: {} unique conv shapes, final weight sparsity {:.0}%",
        net.layers.len(),
        net.schedule.final_sparsity() * 100.0
    );
    for prec in [Precision::F32, Precision::Mixed] {
        let inf = est.estimate_inference(&net, prec)?;
        let base = inf.baseline.total();
        println!("\n{prec} inference, normalized execution time (baseline = 1.00):");
        println!("  SAVE 2 VPUs : {:.2}  ({:.2}x)", inf.save2.total() / base, base / inf.save2.total());
        println!("  SAVE 1 VPU  : {:.2}  ({:.2}x)", inf.save1.total() / base, base / inf.save1.total());
        println!("  dynamic     : {:.2}  ({:.2}x)", inf.dynamic.total() / base, base / inf.dynamic.total());
        println!(
            "  first layer (dense input, no BS): {:.0}% of baseline time",
            inf.baseline.first_layer / base * 100.0
        );
    }
    println!("\npaper (Fig 14a, MP dynamic): 1.59x");
    Ok(())
}
