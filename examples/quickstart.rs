//! Quickstart: simulate one sparse GEMM kernel on the baseline machine and
//! on SAVE, verify the numerical result, and print the speedup.
//!
//! Run with: `cargo run --release --example quickstart`

use save::kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};
use save::sim::runner::run_kernel;
use save::sim::{ConfigKind, MachineConfig, SimError};

fn main() -> Result<(), SimError> {
    // A DNNL-style register-blocked GEMM micro-kernel: 7x3 accumulators,
    // explicit broadcasts, FP32; 40% broadcasted sparsity (zero activations)
    // and 60% non-broadcasted sparsity (pruned weights).
    let workload = GemmWorkload::dense(
        "quickstart",
        GemmKernelSpec {
            m_tiles: 7,
            n_vecs: 3,
            pattern: BroadcastPattern::Explicit,
            precision: Precision::F32,
        },
        128, // reduction length
        6,   // tiles
    )
    .with_sparsity(0.4, 0.6);

    // The paper's 28-core machine, in the fast symmetric mode.
    let machine = MachineConfig::default();

    println!("simulating `{}` ({} VFMA µops)...", workload.name, workload.fma_count());
    let baseline = run_kernel(&workload, ConfigKind::Baseline, &machine, 42, true)?;
    let save2 = run_kernel(&workload, ConfigKind::Save2Vpu, &machine, 42, true)?;
    let save1 = run_kernel(&workload, ConfigKind::Save1Vpu, &machine, 42, true)?;

    println!("baseline (2 VPUs @ 1.7 GHz): {:>8} cycles", baseline.cycles);
    println!(
        "SAVE     (2 VPUs @ 1.7 GHz): {:>8} cycles  -> {:.2}x speedup",
        save2.cycles,
        baseline.seconds / save2.seconds
    );
    println!(
        "SAVE     (1 VPU  @ 2.1 GHz): {:>8} cycles  -> {:.2}x speedup",
        save1.cycles,
        baseline.seconds / save1.seconds
    );
    println!(
        "VPU ops: baseline {} -> SAVE {} ({:.1}% skipped or coalesced away)",
        baseline.stats.vpu_ops,
        save2.stats.vpu_ops,
        100.0 * (1.0 - save2.stats.vpu_ops as f64 / baseline.stats.vpu_ops as f64)
    );
    println!("numerical outputs verified against the scalar reference on every run.");
    Ok(())
}
