//! VPU-count selection policies (§IV-D): runs a training-like kernel
//! sequence whose sparsity ramps up as pruning proceeds, and compares the
//! fixed 1-/2-VPU points, the paper's oracle "dynamic" selection, and a
//! realizable counter-driven heuristic (effectual-lane fraction from the
//! MGUs, with hysteresis and a 10 µs DVFS penalty per transition).
//!
//! Run with: `cargo run --release --example vpu_policy`

use save::kernels::{Phase, Precision};
use save::sim::policy::{run_sequence, VpuPolicy};
use save::sim::{ConfigKind, MachineConfig, SimError};
use save::sparsity::PruningSchedule;

fn main() -> Result<(), SimError> {
    let shape = save::kernels::shapes::conv_by_name("ResNet4_2").ok_or_else(|| {
        SimError::InvalidConfig { what: "ResNet4_2 missing from the shape table".into() }
    })?;
    let schedule = PruningSchedule::resnet50();
    let machine = MachineConfig { cores: 8, ..Default::default() };

    // A sequence of forward kernels across training epochs: dense early,
    // 80% pruned late. Scale each to a full layer's duration so the DVFS
    // switch cost is weighed realistically.
    let kernels: Vec<_> = (0..16)
        .map(|i| {
            let epoch = i as f64 / 15.0 * schedule.total;
            let ws = schedule.sparsity_at(epoch);
            let w = shape
                .workload(Phase::Forward, Precision::F32)
                .with_sparsity(0.35, ws);
            (w, 20_000.0)
        })
        .collect();

    println!("16 forward kernels across pruned ResNet-50 training (dense -> 80% sparse)\n");
    for (label, policy) in [
        ("fixed 2 VPUs", VpuPolicy::Fixed(ConfigKind::Save2Vpu)),
        ("fixed 1 VPU ", VpuPolicy::Fixed(ConfigKind::Save1Vpu)),
        ("oracle      ", VpuPolicy::Oracle),
        ("heuristic   ", VpuPolicy::default_heuristic()),
    ] {
        let out = run_sequence(&kernels, policy, &machine)?;
        let ones = out.choices.iter().filter(|c| **c == ConfigKind::Save1Vpu).count();
        println!(
            "{label}: {:>7.2} ms total, {:>2} switches, {:>2}/16 kernels on 1 VPU",
            out.total_seconds * 1e3,
            out.switches,
            ones
        );
    }
    println!("\nThe heuristic needs no oracle: it reads the previous kernel's");
    println!("effectual-lane fraction from the MGU counters and pays real DVFS");
    println!("transitions, yet lands close to the oracle's time.");
    Ok(())
}
