//! SAVE is not DNN-specific: "SAVE ... can potentially speed-up any vector
//! workload with sparsity" (§I). This example hand-writes a non-GEMM vector
//! kernel straight from `Inst`s — streaming co-occurrence (covariance)
//! accumulation `C[i][j] += x[i] * x[j]` over sparse feature vectors, the
//! inner loop of text/recommendation statistics pipelines — and runs the
//! *same unmodified instruction stream* on the baseline and on SAVE.
//!
//! Run with: `cargo run --release --example sparse_vector_workload`

use rand::{Rng, SeedableRng};
use save::core::{Core, CoreConfig};
use save::isa::{Inst, Memory, Program, VOperand, VReg};
use save::mem::{CoreMemory, MemConfig, Uncore, WarmLevel};

const ROWS: usize = 24; // covariance block rows kept in registers
const SAMPLES: usize = 512;

fn build(sparsity: f64) -> (Program, Memory, u64, Vec<f32>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let mut mem = Memory::new(0);
    // Each sample is a feature vector; we accumulate the ROWS x 16 block of
    // its outer product. Sparse features mean most x[i] are zero.
    let x_base = mem.alloc(SAMPLES * (ROWS + 16) * 4);
    let out_base = mem.alloc(ROWS * 16 * 4);
    let mut x = vec![0.0f32; SAMPLES * (ROWS + 16)];
    for (i, v) in x.iter_mut().enumerate() {
        *v = if rng.gen_bool(sparsity) { 0.0 } else { rng.gen_range(0.1..1.0) };
        mem.write_f32(x_base + 4 * i as u64, *v);
    }
    // Reference: C[i][j] += x[i] * x[ROWS + j] per sample.
    let mut expect = vec![0.0f32; ROWS * 16];
    for s in 0..SAMPLES {
        let xs = &x[s * (ROWS + 16)..(s + 1) * (ROWS + 16)];
        for i in 0..ROWS {
            for j in 0..16 {
                expect[i * 16 + j] = xs[i].mul_add(xs[ROWS + j], expect[i * 16 + j]);
            }
        }
    }
    // Program: accumulators C[0..ROWS] live in registers; per sample, load
    // the 16-wide column slice once, then broadcast each row feature and
    // accumulate.
    let mut p = Program::new("sparse co-occurrence accumulation");
    for i in 0..ROWS {
        p.push(Inst::Zero { dst: VReg(i as u8) });
    }
    let col = VReg(ROWS as u8);
    let bcast = VReg(ROWS as u8 + 1);
    for s in 0..SAMPLES {
        let base = x_base + 4 * (s * (ROWS + 16)) as u64;
        p.push(Inst::VecLoad { dst: col, addr: base + 4 * ROWS as u64 });
        for i in 0..ROWS {
            p.push(Inst::BroadcastLoad { dst: bcast, addr: base + 4 * i as u64 });
            p.push(Inst::VfmaF32 {
                acc: VReg(i as u8),
                a: VOperand::Reg(bcast),
                b: VOperand::Reg(col),
                mask: None,
            });
        }
    }
    for i in 0..ROWS {
        p.push(Inst::VecStore { src: VReg(i as u8), addr: out_base + 4 * (i * 16) as u64 });
    }
    (p, mem, out_base, expect)
}

fn run(cfg: CoreConfig, sparsity: f64) -> u64 {
    let (p, mut mem, out_base, expect) = build(sparsity);
    let mcfg = MemConfig::default();
    let mut uncore = Uncore::new_symmetric(&mcfg, 28);
    let mut cmem = CoreMemory::new(0, mcfg, cfg.freq_ghz);
    cmem.warm(&mut uncore, 0, mem.size() as u64, WarmLevel::L3);
    let out = Core::new(cfg).run(&p, &mut mem, &mut cmem, &mut uncore);
    for (j, &e) in expect.iter().enumerate() {
        let got = mem.read_f32(out_base + 4 * j as u64);
        assert_eq!(got, e, "C element {j}");
    }
    out.stats.cycles
}

fn main() {
    println!("non-DNN vector workload: streaming sparse co-occurrence accumulation");
    println!("(the same legacy instruction stream runs on both machines)");
    println!("{:>10}  {:>10}  {:>10}  {:>8}", "sparsity", "baseline", "SAVE", "speedup");
    for sparsity in [0.0, 0.3, 0.6, 0.9] {
        let base = run(CoreConfig::baseline(), sparsity);
        let save = run(CoreConfig::save_2vpu(), sparsity);
        println!(
            "{:>9.0}%  {:>10}  {:>10}  {:>7.2}x",
            sparsity * 100.0,
            base,
            save,
            base as f64 / save as f64
        );
    }
    println!("\nZero features make both the broadcast (row) and the column operand");
    println!("sparse, so SAVE skips whole VFMAs (BS) and coalesces lanes (NBS) in a");
    println!("kernel that never heard of DNNs — the §I claim.");
}
