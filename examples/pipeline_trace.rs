//! Pipeline trace: watch SAVE coalesce lanes, cycle by cycle.
//!
//! Runs a tiny sparse kernel with the text tracer attached and prints the
//! first lines of the event stream — allocations, compacted VPU issues
//! (note how one op carries lanes `from` several ROB entries), BS skips,
//! and in-order commits.
//!
//! Run with: `cargo run --release --example pipeline_trace`

use save::core::{Core, CoreConfig, TextTracer};
use save::kernels::{BroadcastPattern, GemmKernelSpec, GemmWorkload, Precision};
use save::mem::{CoreMemory, MemConfig, Uncore, WarmLevel};

fn main() {
    let w = GemmWorkload::dense(
        "trace-demo",
        GemmKernelSpec {
            m_tiles: 4,
            n_vecs: 2,
            pattern: BroadcastPattern::Explicit,
            precision: Precision::F32,
        },
        8,
        1,
    )
    .with_sparsity(0.5, 0.5);

    let mut built = w.build(42);
    let mcfg = MemConfig::default();
    let mut uncore = Uncore::new(&mcfg, 1);
    let mut cmem = CoreMemory::new(0, mcfg, 1.7);
    cmem.warm(&mut uncore, 0, built.mem.size() as u64, WarmLevel::L1);

    let mut core = Core::new(CoreConfig::save_2vpu());
    core.set_tracer(Box::new(TextTracer::new(std::io::stdout())));
    let out = core.run(&built.program, &mut built.mem, &mut cmem, &mut uncore);
    built.verify().expect("kernel result verified");
    let s = out.stats;
    println!(
        "\n{} VFMAs -> {} compacted VPU ops ({} skipped outright for broadcasted zeros)",
        s.fma_uops, s.vpu_ops, s.fmas_skipped_bs
    );
    println!("mean temp occupancy {:.1}/16 lanes", s.mean_lanes_per_op());
}
